(* Execution metrics.

   The runtime accounts for everything the evaluation needs: VM
   instruction counts (CPU model), device kernel times (GPU/FPGA
   models), marshaling traffic (Figure 3) and the substitutions that
   were performed. *)

type snapshot = {
  vm_instructions : int;
  native_instructions : int;
      (** instructions executed inside native (compiled C) segments *)
  native_ns : float;
  gpu_kernels : int;
  gpu_kernel_ns : float;
  fpga_runs : int;
  fpga_cycles : int;
  fpga_ns : float;
  marshal : Wire.Boundary.stats;
      (** the accelerator (PCIe-class) boundary *)
  marshal_native : Wire.Boundary.stats;
      (** the JNI-only boundary used by native shared libraries *)
  substitutions : (string * Artifact.device) list;
      (** chain uid, chosen device — in execution order *)
  device_faults : int;  (** faults observed (injected or real) *)
  retries : int;  (** launch retries after a fault *)
  resubstitutions : int;  (** dynamic re-plans after retry exhaustion *)
  replans : int;
      (** online re-plans: a device underperformed its cost model *)
  backoff_ns : float;  (** modeled time spent backing off before retries *)
  sched_runs : int;  (** task-graph scheduler invocations *)
  sched_steady : int;  (** of which ran the steady-state schedule *)
  sched_fallbacks : int;
      (** steady-state requested but fell back to round-robin *)
  sched_rounds : int;  (** cumulative scheduling rounds *)
  sched_steps : int;  (** cumulative actor steps *)
  sched_blocked_steps : int;  (** cumulative blocked steps *)
  sched_cache_hits : int;
      (** steady-state schedules served from the session cache *)
  mr_runs : int;
      (** map/reduce sites executed through the lowered
          scatter/worker/gather task graph *)
  mr_chunks : int;  (** worker chunk launches across those runs *)
  fused_launches : int;
      (** device launches of a fused (cross-filter) segment *)
  unfuses : int;
      (** faulted fused segments re-planned per stage (unfuse path) *)
}

type t = {
  mutable vm_instructions : int;
  mutable native_instructions : int;
  mutable gpu_kernels : int;
  mutable gpu_kernel_ns : float;
  mutable fpga_runs : int;
  mutable fpga_cycles : int;
  mutable fpga_ns : float;
  boundary : Wire.Boundary.t;
  native_boundary : Wire.Boundary.t;
  mutable substitutions : (string * Artifact.device) list;
  mutable device_faults : int;
  mutable retries : int;
  mutable resubstitutions : int;
  mutable replans : int;
  mutable backoff_ns : float;
  mutable sched_runs : int;
  mutable sched_steady : int;
  mutable sched_fallbacks : int;
  mutable sched_rounds : int;
  mutable sched_steps : int;
  mutable sched_blocked_steps : int;
  mutable sched_cache_hits : int;
  mutable mr_runs : int;
  mutable mr_chunks : int;
  mutable fused_launches : int;
  mutable unfuses : int;
}

(* Crossing into a dynamically loaded shared library is a JNI call:
   sub-microsecond latency and memcpy-class bandwidth, no PCIe. *)
let native_boundary_model () =
  Wire.Boundary.create ~label:"jni" ~latency_ns:800.0
    ~bandwidth_bytes_per_ns:24.0 ()

let create ?boundary () =
  {
    vm_instructions = 0;
    native_instructions = 0;
    gpu_kernels = 0;
    gpu_kernel_ns = 0.0;
    fpga_runs = 0;
    fpga_cycles = 0;
    fpga_ns = 0.0;
    boundary =
      (match boundary with
      | Some b -> b
      | None -> Wire.Boundary.create ~label:"pcie" ());
    native_boundary = native_boundary_model ();
    substitutions = [];
    device_faults = 0;
    retries = 0;
    resubstitutions = 0;
    replans = 0;
    backoff_ns = 0.0;
    sched_runs = 0;
    sched_steady = 0;
    sched_fallbacks = 0;
    sched_rounds = 0;
    sched_steps = 0;
    sched_blocked_steps = 0;
    sched_cache_hits = 0;
    mr_runs = 0;
    mr_chunks = 0;
    fused_launches = 0;
    unfuses = 0;
  }

let add_vm_instructions t n = t.vm_instructions <- t.vm_instructions + n

let add_native_instructions t n =
  t.native_instructions <- t.native_instructions + n

let add_gpu_kernel t ~ns =
  t.gpu_kernels <- t.gpu_kernels + 1;
  t.gpu_kernel_ns <- t.gpu_kernel_ns +. ns

let add_fpga_run t ~cycles ~ns =
  t.fpga_runs <- t.fpga_runs + 1;
  t.fpga_cycles <- t.fpga_cycles + cycles;
  t.fpga_ns <- t.fpga_ns +. ns

let add_substitution t uid device =
  t.substitutions <- (uid, device) :: t.substitutions

let add_device_fault t = t.device_faults <- t.device_faults + 1

let add_retry t ~backoff_ns =
  t.retries <- t.retries + 1;
  t.backoff_ns <- t.backoff_ns +. backoff_ns

let add_resubstitution t = t.resubstitutions <- t.resubstitutions + 1
let add_replan t = t.replans <- t.replans + 1
let add_sched_cache_hit t = t.sched_cache_hits <- t.sched_cache_hits + 1

let add_fused_launch t = t.fused_launches <- t.fused_launches + 1
let add_unfuse t = t.unfuses <- t.unfuses + 1

let add_mr_run t ~chunks =
  t.mr_runs <- t.mr_runs + 1;
  t.mr_chunks <- t.mr_chunks + chunks

let add_scheduler_run t ~steady ~fallback ~rounds ~steps ~blocked_steps =
  t.sched_runs <- t.sched_runs + 1;
  if steady then t.sched_steady <- t.sched_steady + 1;
  if fallback then t.sched_fallbacks <- t.sched_fallbacks + 1;
  t.sched_rounds <- t.sched_rounds + rounds;
  t.sched_steps <- t.sched_steps + steps;
  t.sched_blocked_steps <- t.sched_blocked_steps + blocked_steps

let boundary t = t.boundary
let native_boundary t = t.native_boundary

(* The CPU cost models. Interpreted bytecode dispatch costs ~6ns per
   instruction on a ~2GHz core; the same operation compiled to native
   code retires in under a nanosecond — the classic interpreter/JIT
   gap the paper's native configuration exploits. *)
let cpu_ns_per_instruction = 6.0
let native_ns_per_instruction = 0.75

let snapshot t : snapshot =
  {
    vm_instructions = t.vm_instructions;
    native_instructions = t.native_instructions;
    native_ns =
      float_of_int t.native_instructions *. native_ns_per_instruction;
    gpu_kernels = t.gpu_kernels;
    gpu_kernel_ns = t.gpu_kernel_ns;
    fpga_runs = t.fpga_runs;
    fpga_cycles = t.fpga_cycles;
    fpga_ns = t.fpga_ns;
    marshal = Wire.Boundary.stats t.boundary;
    marshal_native = Wire.Boundary.stats t.native_boundary;
    substitutions = List.rev t.substitutions;
    device_faults = t.device_faults;
    retries = t.retries;
    resubstitutions = t.resubstitutions;
    replans = t.replans;
    backoff_ns = t.backoff_ns;
    sched_runs = t.sched_runs;
    sched_steady = t.sched_steady;
    sched_fallbacks = t.sched_fallbacks;
    sched_rounds = t.sched_rounds;
    sched_steps = t.sched_steps;
    sched_blocked_steps = t.sched_blocked_steps;
    sched_cache_hits = t.sched_cache_hits;
    mr_runs = t.mr_runs;
    mr_chunks = t.mr_chunks;
    fused_launches = t.fused_launches;
    unfuses = t.unfuses;
  }

let reset t =
  t.vm_instructions <- 0;
  t.native_instructions <- 0;
  t.gpu_kernels <- 0;
  t.gpu_kernel_ns <- 0.0;
  t.fpga_runs <- 0;
  t.fpga_cycles <- 0;
  t.fpga_ns <- 0.0;
  Wire.Boundary.reset_stats t.boundary;
  Wire.Boundary.reset_stats t.native_boundary;
  t.substitutions <- [];
  t.device_faults <- 0;
  t.retries <- 0;
  t.resubstitutions <- 0;
  t.replans <- 0;
  t.backoff_ns <- 0.0;
  t.sched_runs <- 0;
  t.sched_steady <- 0;
  t.sched_fallbacks <- 0;
  t.sched_rounds <- 0;
  t.sched_steps <- 0;
  t.sched_blocked_steps <- 0;
  t.sched_cache_hits <- 0;
  t.mr_runs <- 0;
  t.mr_chunks <- 0;
  t.fused_launches <- 0;
  t.unfuses <- 0

(* Per-job accounting in a shared engine: snapshot on dispatch,
   snapshot on completion, subtract. Counters only ever grow, so the
   later snapshot's substitution list extends the earlier one — the
   job's own substitutions are the suffix past the earlier length. *)
let diff (later : snapshot) (earlier : snapshot) : snapshot =
  let b (l : Wire.Boundary.stats) (e : Wire.Boundary.stats) :
      Wire.Boundary.stats =
    {
      crossings_to_device = l.crossings_to_device - e.crossings_to_device;
      crossings_to_host = l.crossings_to_host - e.crossings_to_host;
      bytes_to_device = l.bytes_to_device - e.bytes_to_device;
      bytes_to_host = l.bytes_to_host - e.bytes_to_host;
      modeled_transfer_ns =
        l.modeled_transfer_ns -. e.modeled_transfer_ns;
    }
  in
  let rec drop n l = if n <= 0 then l else match l with
    | [] -> []
    | _ :: tl -> drop (n - 1) tl
  in
  {
    vm_instructions = later.vm_instructions - earlier.vm_instructions;
    native_instructions =
      later.native_instructions - earlier.native_instructions;
    native_ns = later.native_ns -. earlier.native_ns;
    gpu_kernels = later.gpu_kernels - earlier.gpu_kernels;
    gpu_kernel_ns = later.gpu_kernel_ns -. earlier.gpu_kernel_ns;
    fpga_runs = later.fpga_runs - earlier.fpga_runs;
    fpga_cycles = later.fpga_cycles - earlier.fpga_cycles;
    fpga_ns = later.fpga_ns -. earlier.fpga_ns;
    marshal = b later.marshal earlier.marshal;
    marshal_native = b later.marshal_native earlier.marshal_native;
    substitutions =
      drop (List.length earlier.substitutions) later.substitutions;
    device_faults = later.device_faults - earlier.device_faults;
    retries = later.retries - earlier.retries;
    resubstitutions = later.resubstitutions - earlier.resubstitutions;
    replans = later.replans - earlier.replans;
    backoff_ns = later.backoff_ns -. earlier.backoff_ns;
    sched_runs = later.sched_runs - earlier.sched_runs;
    sched_steady = later.sched_steady - earlier.sched_steady;
    sched_fallbacks = later.sched_fallbacks - earlier.sched_fallbacks;
    sched_rounds = later.sched_rounds - earlier.sched_rounds;
    sched_steps = later.sched_steps - earlier.sched_steps;
    sched_blocked_steps =
      later.sched_blocked_steps - earlier.sched_blocked_steps;
    sched_cache_hits = later.sched_cache_hits - earlier.sched_cache_hits;
    mr_runs = later.mr_runs - earlier.mr_runs;
    mr_chunks = later.mr_chunks - earlier.mr_chunks;
    fused_launches = later.fused_launches - earlier.fused_launches;
    unfuses = later.unfuses - earlier.unfuses;
  }

(* --- snapshot presentation -------------------------------------------- *)

(* One declaration per metric. The pretty-printer, the JSON export and
   the registry export are all derived from this list, so the three
   renderings cannot drift apart (they used to be maintained by hand,
   in parallel). [fd_count] distinguishes integral counts from modeled
   nanosecond totals, which render with a fraction. *)

type field = {
  fd_name : string;
  fd_labels : (string * string) list;
  fd_help : string;
  fd_count : bool;
  fd_get : snapshot -> float;
}

let boundary_fields label get =
  let b s = (get s : Wire.Boundary.stats) in
  [
    {
      fd_name = "marshal_crossings_to_device";
      fd_labels = [ "boundary", label ];
      fd_help = "boundary crossings toward the device";
      fd_count = true;
      fd_get = (fun s -> float_of_int (b s).crossings_to_device);
    };
    {
      fd_name = "marshal_crossings_to_host";
      fd_labels = [ "boundary", label ];
      fd_help = "boundary crossings back to the host";
      fd_count = true;
      fd_get = (fun s -> float_of_int (b s).crossings_to_host);
    };
    {
      fd_name = "marshal_bytes_to_device";
      fd_labels = [ "boundary", label ];
      fd_help = "bytes serialized toward the device";
      fd_count = true;
      fd_get = (fun s -> float_of_int (b s).bytes_to_device);
    };
    {
      fd_name = "marshal_bytes_to_host";
      fd_labels = [ "boundary", label ];
      fd_help = "bytes deserialized back to the host";
      fd_count = true;
      fd_get = (fun s -> float_of_int (b s).bytes_to_host);
    };
    {
      fd_name = "marshal_transfer_ns";
      fd_labels = [ "boundary", label ];
      fd_help = "modeled transfer time on this boundary";
      fd_count = false;
      fd_get = (fun s -> (b s).modeled_transfer_ns);
    };
  ]

let field name ?(labels = []) ~help ~count get =
  { fd_name = name; fd_labels = labels; fd_help = help; fd_count = count;
    fd_get = get }

let count_field name ~help get =
  field name ~help ~count:true (fun s -> float_of_int (get s))

let fields : field list =
  [
    count_field "vm_instructions"
      ~help:"bytecode instructions interpreted on the host VM"
      (fun s -> s.vm_instructions);
    count_field "native_instructions"
      ~help:"instructions executed inside native (compiled C) segments"
      (fun s -> s.native_instructions);
    field "native_ns" ~help:"modeled native execution time" ~count:false
      (fun s -> s.native_ns);
    count_field "gpu_kernels" ~help:"GPU kernel launches"
      (fun s -> s.gpu_kernels);
    field "gpu_kernel_ns" ~help:"modeled GPU kernel time" ~count:false
      (fun s -> s.gpu_kernel_ns);
    count_field "fpga_runs" ~help:"FPGA pipeline runs" (fun s -> s.fpga_runs);
    count_field "fpga_cycles" ~help:"FPGA cycles simulated"
      (fun s -> s.fpga_cycles);
    field "fpga_ns" ~help:"modeled FPGA time" ~count:false
      (fun s -> s.fpga_ns);
  ]
  @ boundary_fields "pcie" (fun s -> s.marshal)
  @ boundary_fields "jni" (fun s -> s.marshal_native)
  @ [
      count_field "device_faults" ~help:"device faults observed"
        (fun s -> s.device_faults);
      count_field "retries" ~help:"launch retries after a fault"
        (fun s -> s.retries);
      count_field "resubstitutions"
        ~help:"dynamic re-plans after retry exhaustion"
        (fun s -> s.resubstitutions);
      count_field "replans"
        ~help:"online re-plans after a device underperformed its model"
        (fun s -> s.replans);
      field "backoff_ns" ~help:"modeled backoff before retries" ~count:false
        (fun s -> s.backoff_ns);
      count_field "sched_runs" ~help:"task-graph scheduler invocations"
        (fun s -> s.sched_runs);
      count_field "sched_steady"
        ~help:"scheduler runs using the steady-state schedule"
        (fun s -> s.sched_steady);
      count_field "sched_fallbacks"
        ~help:"steady-state requests that fell back to round-robin"
        (fun s -> s.sched_fallbacks);
      count_field "sched_rounds" ~help:"cumulative scheduling rounds"
        (fun s -> s.sched_rounds);
      count_field "sched_steps" ~help:"cumulative actor steps"
        (fun s -> s.sched_steps);
      count_field "sched_blocked_steps" ~help:"cumulative blocked steps"
        (fun s -> s.sched_blocked_steps);
      count_field "sched_cache_hits"
        ~help:"steady-state schedules served from the session cache"
        (fun s -> s.sched_cache_hits);
      count_field "mr_runs"
        ~help:"map/reduce sites executed via the lowered task graph"
        (fun s -> s.mr_runs);
      count_field "mr_chunks" ~help:"worker chunk launches in lowered runs"
        (fun s -> s.mr_chunks);
      count_field "fused_launches"
        ~help:"device launches of fused (cross-filter) segments"
        (fun s -> s.fused_launches);
      count_field "unfuses"
        ~help:"faulted fused segments re-planned per stage"
        (fun s -> s.unfuses);
    ]

let field_label f =
  f.fd_name
  ^
  if f.fd_labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=" ^ v) f.fd_labels)
    ^ "}"

let field_value f s =
  if f.fd_count then Printf.sprintf "%.0f" (f.fd_get s)
  else Printf.sprintf "%.1f" (f.fd_get s)

let pp ppf (s : snapshot) =
  let width =
    List.fold_left
      (fun w f -> max w (String.length (field_label f)))
      0 fields
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun f ->
      Format.fprintf ppf "%-*s %s@," width
        (field_label f ^ ":")
        (field_value f s))
    fields;
  Format.fprintf ppf "substitutions: %s"
    (if s.substitutions = [] then "none"
     else
       String.concat ", "
         (List.map
            (fun (uid, d) -> uid ^ " -> " ^ Artifact.device_name d)
            s.substitutions));
  Format.fprintf ppf "@]"

let registry_of (s : snapshot) =
  let reg = Support.Registry.create () in
  List.iter
    (fun f ->
      let m = Support.Registry.counter reg ~help:f.fd_help f.fd_name in
      Support.Registry.set m ~labels:f.fd_labels (f.fd_get s))
    fields;
  let subs =
    Support.Registry.counter reg
      ~help:"segment substitutions performed, by chain uid and device"
      "substitutions"
  in
  List.iter
    (fun (uid, d) ->
      Support.Registry.inc subs
        ~labels:[ "uid", uid; "device", Artifact.device_name d ]
        1.0)
    s.substitutions;
  reg

let to_text (s : snapshot) = Support.Registry.to_text (registry_of s)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (s : snapshot) =
  Printf.sprintf "{\"metrics\":%s,\"substitutions\":[%s]}"
    (Support.Registry.to_json (registry_of s))
    (String.concat ","
       (List.map
          (fun (uid, d) ->
            Printf.sprintf "{\"uid\":\"%s\",\"device\":\"%s\"}"
              (json_escape uid)
              (Artifact.device_name d))
          s.substitutions))

let modeled_cpu_ns t = float_of_int t.vm_instructions *. cpu_ns_per_instruction

let modeled_accelerator_ns t =
  t.gpu_kernel_ns +. t.fpga_ns
  +. (float_of_int t.native_instructions *. native_ns_per_instruction)
  +. (Wire.Boundary.stats t.boundary).modeled_transfer_ns
  +. (Wire.Boundary.stats t.native_boundary).modeled_transfer_ns
