(** The artifact store (paper section 4.2).

    Task UIDs "can be looked up efficiently in the artifact store
    populated by the backends"; the store also accumulates the
    manifest, including per-backend exclusions. *)

type t

val create : unit -> t

val add : t -> Artifact.t -> unit
(** Register an artifact and append it to the manifest. *)

val record_exclusion :
  t -> uid:string -> device:Artifact.device -> reason:string -> unit

val find : t -> uid:string -> Artifact.t list
(** Every implementation of a task UID, sorted by (uid, device name)
    so lookup order never depends on store insertion order — the
    determinism contract {!Substitute.plan} relies on for
    tie-breaking. Artifacts on quarantined devices are omitted. *)

val find_on : t -> uid:string -> device:Artifact.device -> Artifact.t option

val quarantine : t -> device:Artifact.device -> reason:string -> unit
(** Pull a device out of service: its artifacts disappear from
    {!find}/{!find_on}, so {!Substitute.plan} never selects it again.
    The runtime quarantines a device when its retries are exhausted. *)

val is_quarantined : t -> device:Artifact.device -> bool

val quarantined : t -> (Artifact.device * string) list
(** Quarantined devices with reasons, oldest first. *)

val clear_quarantine : t -> unit
(** Return all quarantined devices to service (used by tests that
    reuse a compiled store across fault schedules). *)

val note_resident : t -> device:Artifact.device -> uid:string -> unit
(** Record that segment [uid]'s code and staging buffers were just
    used on [device] — the runtime calls this after every successful
    device launch. Kept as a small per-device LRU: residency is
    scheduling state (a data-aware scheduler prefers a device where a
    job's segments are already staged), never correctness state. *)

val is_resident : t -> device:Artifact.device -> uid:string -> bool

val residents : t -> device:Artifact.device -> string list
(** Most recently used first. *)

val evict_residents : t -> device:Artifact.device -> unit
(** Drop a device's residency set. {!quarantine} does this
    implicitly — a device out of service cannot hold staged state. *)

val manifest : t -> Artifact.manifest
val artifact_count : t -> int

val add_fusion : t -> chain:string -> Lime_ir.Ir.filter_info -> unit
(** Register the synthetic fused filter the compiler composed for a
    run, keyed by the plain chain uid (["a+b+c"]). {!Substitute}
    consults this so even an all-bytecode plan executes a fused run as
    one segment. *)

val find_fusion : t -> chain:string -> Lime_ir.Ir.filter_info option

val fusion_count : t -> int
(** Number of fused runs registered by the compiler. *)
