module Ir = Lime_ir.Ir

(* Task substitution.

   "For each task (sub)graph that has an alternative implementation,
   the runtime is in a position to perform a substitution. At present,
   the runtime algorithm for doing this substitution is primitive: it
   prefers a larger substitution to a smaller one. It also favors GPU
   and FPGA artifacts to bytecode although that choice can be manually
   directed as well." (paper section 4.2) *)

type policy =
  | Bytecode_only  (** manual direction: never substitute *)
  | Prefer_accelerators
      (** the paper's default: largest substitution first, accelerator
          over bytecode, GPU preferred over FPGA when both exist *)
  | Prefer_devices of Artifact.device list
      (** manual direction of the device preference order *)
  | Smallest_substitution
      (** ablation A1: only single-filter substitutions *)
  | Adaptive
      (** the paper's future work (section 7): pick the placement with
          the lowest estimated end-to-end cost for the observed stream
          length, instead of a fixed device preference *)

let device_order = function
  | Bytecode_only -> []
  | Prefer_accelerators ->
    (* "It also favors GPU and FPGA artifacts to bytecode" (section
       4.2); native shared libraries beat interpretation but lose to
       the accelerators. *)
    [ Artifact.Gpu; Artifact.Fpga; Artifact.Native ]
  | Prefer_devices ds -> List.filter (fun d -> d <> Artifact.Cpu) ds
  | Smallest_substitution | Adaptive ->
    [ Artifact.Gpu; Artifact.Fpga; Artifact.Native ]

(* An execution segment: a maximal run of filters with one chosen
   implementation. *)
type segment =
  | S_bytecode of Ir.filter_info list
  | S_device of Artifact.t * Ir.filter_info list

let segment_filters = function S_bytecode fs | S_device (_, fs) -> fs

(* Replace every registered fusible run inside a bytecode run with its
   synthetic fused filter, so even an all-bytecode plan executes the
   run as one segment (one actor, one VM call per element). The
   compiler registers only disjoint maximal runs, so greedy
   longest-first matching is unambiguous. *)
let fuse_bytecode (store : Store.t) (fs : Ir.filter_info list) :
    Ir.filter_info list =
  let arr = Array.of_list fs in
  let n = Array.length arr in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let rec try_len len =
        if len < 2 then None
        else
          let sub = Array.to_list (Array.sub arr i len) in
          match Store.find_fusion store ~chain:(Artifact.chain_uid sub) with
          | Some fused -> Some (fused, len)
          | None -> try_len (len - 1)
      in
      match try_len (n - i) with
      | Some (fused, len) -> go (i + len) (fused :: acc)
      | None -> go (i + 1) (arr.(i) :: acc)
  in
  go 0 []

(* Choose implementations for the filter chain of one task graph.
   Greedy left-to-right: at each relocatable filter, try the longest
   chain with an artifact on the most preferred device.

   Tie-breaking is deterministic by construction: longer chains are
   tried before shorter ones, devices in the policy's preference
   order, and when two artifacts cover chains of equal length on
   equally-preferred devices the store resolves the tie by artifact
   UID ([Store.find] sorts by UID, never by insertion order).

   With [fuse] (the default), each device lookup tries the fused
   artifact (uid ["fuse:" ^ chain uid]) before the per-stage one, and
   bytecode runs are rewritten through the store's fusion registry.
   [~fuse:false] is the unfuse path: recovery re-plans a faulted fused
   segment per stage, and the planner uses it to price fusion. *)
let plan ?(fuse = true) (policy : policy) (store : Store.t)
    (filters : Ir.filter_info list) : segment list =
  let devices = device_order policy in
  let filters = Array.of_list filters in
  let n = Array.length filters in
  let find_chain start =
    (* Longest relocatable run [start, stop) with an artifact. *)
    let max_len =
      let rec run i = if i < n && filters.(i).Ir.relocatable then run (i + 1) else i in
      run start - start
    in
    let try_len len =
      if len = 0 then None
      else
        let chain = Array.to_list (Array.sub filters start len) in
        let uid = Artifact.chain_uid chain in
        let uids =
          if fuse then [ Artifact.fused_prefix ^ uid; uid ] else [ uid ]
        in
        let rec try_devices = function
          | [] -> None
          | d :: rest -> (
            match
              List.find_map
                (fun uid -> Store.find_on store ~uid ~device:d)
                uids
            with
            | Some a -> Some (a, chain)
            | None -> try_devices rest)
        in
        try_devices devices
    in
    match policy with
    | Bytecode_only -> None
    | Smallest_substitution -> try_len (min 1 max_len)
    | Prefer_accelerators | Prefer_devices _ | Adaptive ->
      let rec search len =
        if len = 0 then None
        else
          match try_len len with
          | Some r -> Some r
          | None -> search (len - 1)
      in
      search max_len
  in
  let rec go i acc_bc acc =
    let flush_bc acc =
      if acc_bc = [] then acc
      else
        let run = List.rev acc_bc in
        let run = if fuse then fuse_bytecode store run else run in
        S_bytecode run :: acc
    in
    if i >= n then List.rev (flush_bc acc)
    else
      match find_chain i with
      | Some (artifact, chain) ->
        go (i + List.length chain) []
          (S_device (artifact, chain) :: flush_bc acc)
      | None -> go_bc i acc_bc acc
  and go_bc i acc_bc acc = go_next i (filters.(i) :: acc_bc) acc
  and go_next i acc_bc acc = go (i + 1) acc_bc acc in
  go 0 [] []

(* Adaptive planning: for every maximal relocatable run, compare the
   estimated cost of each whole-run device artifact against staying on
   bytecode, and keep the cheapest. [cost None fs] estimates the
   bytecode path; [cost (Some artifact) fs] a device substitution.
   Exact cost ties are broken deterministically toward the earlier
   candidate in the fixed GPU, FPGA, native order (and toward bytecode
   when a device only equals it): [c < best_cost] keeps the
   incumbent. *)
let plan_adaptive ?(fuse = true)
    ~(cost : Artifact.t option -> Ir.filter_info list -> float)
    (store : Store.t) (filters : Ir.filter_info list) : segment list =
  let filters = Array.of_list filters in
  let n = Array.length filters in
  let rec go i acc_bc acc =
    let flush_bc acc =
      if acc_bc = [] then acc
      else
        let run = List.rev acc_bc in
        let run = if fuse then fuse_bytecode store run else run in
        S_bytecode run :: acc
    in
    if i >= n then List.rev (flush_bc acc)
    else if not filters.(i).Ir.relocatable then
      go (i + 1) (filters.(i) :: acc_bc) acc
    else begin
      (* the maximal relocatable run starting here *)
      let stop =
        let rec run j = if j < n && filters.(j).Ir.relocatable then run (j + 1) else j in
        run i
      in
      let chain = Array.to_list (Array.sub filters i (stop - i)) in
      let uid = Artifact.chain_uid chain in
      let uids =
        if fuse then [ Artifact.fused_prefix ^ uid; uid ] else [ uid ]
      in
      let candidates =
        List.concat_map
          (fun uid ->
            List.filter_map
              (fun d -> Store.find_on store ~uid ~device:d)
              [ Artifact.Gpu; Artifact.Fpga; Artifact.Native ])
          uids
      in
      let best =
        List.fold_left
          (fun (best_cost, best) a ->
            let c = cost (Some a) chain in
            if c < best_cost then c, Some a else best_cost, best)
          (cost None chain, None)
          candidates
        |> snd
      in
      match best with
      | Some artifact ->
        go stop [] (S_device (artifact, chain) :: flush_bc acc)
      | None ->
        (* bytecode wins: fall through filter by filter *)
        go stop (List.rev_append chain acc_bc) acc
    end
  in
  go 0 [] []

let describe_plan (segments : segment list) =
  String.concat " | "
    (List.map
       (function
         | S_bytecode fs ->
           if List.exists (fun (f : Ir.filter_info) ->
                  Artifact.is_fused_uid f.Ir.uid) fs
           then Printf.sprintf "bytecode(%d fused)" (List.length fs)
           else Printf.sprintf "bytecode(%d)" (List.length fs)
         | S_device (a, fs) ->
           if Artifact.is_fused_uid (Artifact.uid a) then
             Printf.sprintf "%s(%d stages fused)"
               (Artifact.device_name (Artifact.device a))
               (List.length fs)
           else
             Printf.sprintf "%s(%d)"
               (Artifact.device_name (Artifact.device a))
               (List.length fs))
       segments)
