module Ir = Lime_ir.Ir
module I = Lime_ir.Interp

(** The co-execution engine: the externally visible face of the
    Liquid Metal runtime.

    [call] runs a host method on the bytecode VM with hooks installed
    so that task graphs, map sites and reduce sites consult the
    artifact store, perform task substitution under the current
    {!Substitute.policy}, marshal values across the host/device
    boundary (Figure 3), and dispatch to the GPU and FPGA substrates.
    Everything is accounted in {!Metrics}.

    Device launches are fault-tolerant: a launch that raises
    {!Support.Fault.Device_fault} is retried up to [max_retries] times
    with exponential backoff (receiver state is rewound first), and on
    exhaustion the device is quarantined in the {!Store} and the
    segment is dynamically re-substituted — re-planned over the
    remaining healthy devices, bottoming out at bytecode, which always
    exists and cannot fault. See [docs/FAULT_TOLERANCE.md]. *)

type t

exception Engine_error of string
(** Raised on invalid engine configuration (e.g. a non-positive
    [fifo_capacity]). *)

type cost_model = n:int -> Artifact.t option -> Ir.filter_info list -> float
(** Predicted modeled nanoseconds for one segment launch over [n]
    elements: [f ~n None chain] the interpreted-bytecode path,
    [f ~n (Some artifact) chain] a device substitution (compute +
    launch overhead + both boundary crossings). The placement planner
    installs a calibrated one ({!Placement.Planner.cost_fn}); without
    it the engine falls back to its built-in static estimate. *)

val create :
  ?policy:Substitute.policy ->
  ?fuse:bool ->
  ?gpu_device:Gpu.Device.t ->
  ?fpga_clock_ns:int ->
  ?fifo_capacity:int ->
  ?schedule:Scheduler.mode ->
  ?boundary:Wire.Boundary.t ->
  ?model_divergence:bool ->
  ?chunk_elements:int ->
  ?max_retries:int ->
  ?retry_backoff_ns:float ->
  ?cost_model:cost_model ->
  ?replan_factor:float ->
  ?lower_mapreduce:bool ->
  ?map_chunks:int ->
  ?reduce_chunks:int ->
  Bytecode.Compile.unit_ ->
  Store.t ->
  t
(** Defaults: [Prefer_accelerators], GTX580-class GPU, 4ns FPGA clock
    (250 MHz), FIFO capacity 16, round-robin scheduling, divergence
    modeling on, whole-stream device batching ([chunk_elements] bounds
    the staging buffer and launches the device every that-many
    elements), [max_retries] 2 with a 1000ns backoff base (attempt [k]
    waits [retry_backoff_ns * 2^k] modeled nanoseconds).

    [fuse] (default on) plans with cross-filter fused artifacts and
    the store's fusion registry ({!Substitute.plan}); off plans every
    stage separately. Independent of [fuse], a fused segment that
    exhausts its retries is unfused: recovery re-plans it per stage
    (see [docs/FUSION.md]).

    [schedule = Steady_state] solves each task graph's SDF balance
    equations ([Analysis.Rates]) and fires actors in the steady-state
    batched order with FIFO capacities sized from the schedule instead
    of the blanket [fifo_capacity]; graphs the algebra cannot solve
    (non-positive or dynamic rates) and fault-injection runs fall back
    to round-robin. Solved schedules are cached per (template, plan,
    stream shape) for the session; hits are counted in
    {!Metrics.snapshot.sched_cache_hits}. Scheduler outcomes are
    recorded in {!Metrics}.

    [replan_factor] arms online re-planning: after every device
    segment launch the measured modeled service time is compared
    against the cost model's prediction, and a launch that exceeds
    [factor * predicted] demotes the artifact (its observed
    per-element cost overrides the model from then on) and routes the
    segment's remaining chunks through mid-run re-substitution —
    planned adaptively by effective cost even under a manual policy,
    so the demotion takes effect. See [docs/PLACEMENT.md].

    [lower_mapreduce] (default on) executes map/reduce kernel sites as
    lowered scatter/worker/gather task graphs
    ([Lime_ir.Lower_mapreduce]) under the full plan/actor/steady-state
    /fault machinery; off restores the legacy whole-array GPU hook.
    [map_chunks]/[reduce_chunks] force the scatter width (maps default
    to up to 4 chunks of at least 1024 elements; reduces to 1, because
    chunked combining reassociates the fold). See [docs/LOWERING.md].

    @raise Engine_error if [fifo_capacity < 1]. *)

val call : t -> string -> I.v list -> I.v
(** Run a host method end to end under the engine's policy. *)

val set_policy : t -> Substitute.policy -> unit
val policy : t -> Substitute.policy

val fusing : t -> bool
(** Whether the engine plans with fused artifacts ([fuse] at
    creation). *)

val set_cost_model : t -> cost_model -> unit
(** Install (or replace) the calibrated cost model used by the
    [Adaptive] policy and the re-planner. *)

val observed_costs : t -> (string * float) list
(** Per-artifact observed per-element costs ("uid@device" -> ns)
    recorded by the online re-planner; empty until a launch
    underperforms its model. *)

val schedule : t -> Scheduler.mode
(** The scheduling mode the engine was created with. *)

val metrics : t -> Metrics.t
val store : t -> Store.t
val program : t -> Ir.program

val last_plan : t -> string option
(** Human-readable description of the substitution plan chosen for the
    most recently executed task graph. *)

val modeled_ns : t -> float
(** Total modeled time accumulated so far (interpreter + devices +
    boundaries) — the quantity whose deltas the calibrator and the
    re-planner measure. *)

val calibrate_batch :
  ?receivers:I.v option list ->
  t ->
  Artifact.t ->
  Wire.Value.t list ->
  Wire.Value.t list
(** One raw device launch over a synthetic batch through the full
    boundary path — the placement calibrator's microbenchmark
    primitive. Static chains run receiverless; stateful chains pass
    fabricated receiver objects via [receivers] (one [option] per
    filter of the artifact's chain, in order).

    @raise Engine_error for map/reduce (non-chain) artifacts or a
    misaligned receiver list. *)

(** {2 Wire-format helpers} (exposed for the benches and tests) *)

val wire_ty_of_value : Wire.Value.t -> Wire.Codec.ty
val pack_stream : Ir.ty -> Wire.Value.t list -> Wire.Value.t
val unpack_stream : Wire.Value.t -> Wire.Value.t list
