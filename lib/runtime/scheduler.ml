(* The cooperative task scheduler.

   Steps every live actor in round-robin order; a round in which no
   actor progresses and none finished means the graph is wedged
   (a cycle of full/empty queues), which is reported rather than
   spinning forever. *)

module Trace = Support.Trace

type stats = {
  rounds : int;  (** scheduling rounds until quiescence *)
  steps : int;  (** total actor steps taken *)
  blocked_steps : int;  (** steps that found the actor blocked *)
}

exception Deadlock of string * stats

(* The deadlock report names every wedged actor together with its
   channel states, so the full/empty cycle is visible in the message
   itself (e.g. "bc:f[in=empty out=full]"). *)
let deadlock_message (live : Actor.t list) =
  Printf.sprintf "task graph wedged; blocked actors: %s"
    (String.concat ", "
       (List.map
          (fun (a : Actor.t) -> a.name ^ Actor.describe_ports a)
          live))

let status_name = function
  | Actor.Progress -> "progress"
  | Actor.Blocked -> "blocked"
  | Actor.Done -> "done"

let run ?(on_round = fun _ -> ()) (actors : Actor.t list) : stats =
  let live = ref actors in
  let rounds = ref 0 in
  let steps = ref 0 in
  let blocked = ref 0 in
  let tracing = Trace.enabled () in
  while !live <> [] do
    incr rounds;
    let progressed = ref false in
    let still_live =
      List.filter
        (fun (a : Actor.t) ->
          incr steps;
          let status = a.step () in
          if tracing then
            Trace.instant ~cat:"sched"
              ~args:
                [
                  "status", Trace.Str (status_name status);
                  "round", Trace.Int !rounds;
                ]
              a.name;
          match status with
          | Actor.Progress ->
            progressed := true;
            true
          | Actor.Blocked ->
            incr blocked;
            true
          | Actor.Done ->
            progressed := true;
            false)
        !live
    in
    live := still_live;
    on_round !rounds;
    if (not !progressed) && !live <> [] then
      raise
        (Deadlock
           ( deadlock_message !live,
             { rounds = !rounds; steps = !steps; blocked_steps = !blocked } ))
  done;
  { rounds = !rounds; steps = !steps; blocked_steps = !blocked }
