(* The cooperative task scheduler.

   Two modes:

   - [run] steps every live actor in round-robin order — blind
     demand-driven discovery, one step per actor per round;
   - [run_steady] fires actors in a precomputed steady-state order:
     each actor gets a per-sweep step *budget* derived from the solved
     SDF repetition vector ([Analysis.Rates]), so the scheduler never
     probes an actor that provably has nothing to do — the probes are
     exactly the blocked steps that dominate round-robin on deep or
     batching pipelines.

   In both modes, a round (or sweep) in which no actor progresses and
   none finished means the graph is wedged (a cycle of full/empty
   queues), which is reported rather than spinning forever. An actor's
   final [Done] return is bookkeeping, not work: it is neither counted
   as a step nor traced. *)

module Trace = Support.Trace

type stats = {
  rounds : int;  (** scheduling rounds until quiescence *)
  steps : int;  (** total actor steps taken *)
  blocked_steps : int;  (** steps that found the actor blocked *)
}

type mode = Round_robin | Steady_state

let mode_name = function
  | Round_robin -> "roundrobin"
  | Steady_state -> "steady"

exception Deadlock of string * stats

(* The deadlock report embeds the scheduler's final stats and names
   every wedged actor together with its channel states, so the
   full/empty cycle is diagnosable from the message alone
   (e.g. "bc:f[in=empty out=full]"). *)
let deadlock_message (live : Actor.t list) (s : stats) =
  Printf.sprintf
    "task graph wedged after %d round(s), %d step(s), %d blocked; blocked \
     actors: %s"
    s.rounds s.steps s.blocked_steps
    (String.concat ", "
       (List.map
          (fun (a : Actor.t) -> a.name ^ Actor.describe_ports a)
          live))

let status_name = function
  | Actor.Progress -> "progress"
  | Actor.Blocked -> "blocked"
  | Actor.Done -> "done"

let run ?(on_round = fun _ -> ()) (actors : Actor.t list) : stats =
  let live = ref actors in
  let rounds = ref 0 in
  let steps = ref 0 in
  let blocked = ref 0 in
  let tracing = Trace.enabled () in
  while !live <> [] do
    incr rounds;
    let progressed = ref false in
    let still_live =
      List.filter
        (fun (a : Actor.t) ->
          let status = a.step () in
          (* A final [Done] return is not useful work: don't count it
             as a step, don't trace it. *)
          if status <> Actor.Done then begin
            incr steps;
            if tracing then
              Trace.instant ~cat:"sched"
                ~args:
                  [
                    "status", Trace.Str (status_name status);
                    "round", Trace.Int !rounds;
                  ]
                a.name
          end;
          match status with
          | Actor.Progress ->
            progressed := true;
            true
          | Actor.Blocked ->
            incr blocked;
            true
          | Actor.Done ->
            progressed := true;
            false)
        !live
    in
    live := still_live;
    on_round !rounds;
    if (not !progressed) && !live <> [] then begin
      let s = { rounds = !rounds; steps = !steps; blocked_steps = !blocked } in
      raise (Deadlock (deadlock_message !live s, s))
    end
  done;
  { rounds = !rounds; steps = !steps; blocked_steps = !blocked }

let run_steady ?(on_round = fun _ -> ())
    (budgeted : (Actor.t * int) list) : stats =
  let live = ref (List.map (fun (a, b) -> a, max b 1) budgeted) in
  let rounds = ref 0 in
  let steps = ref 0 in
  let blocked = ref 0 in
  let tracing = Trace.enabled () in
  while !live <> [] do
    incr rounds;
    let progressed = ref false in
    live :=
      List.filter
        (fun ((a : Actor.t), budget) ->
          (* One burst: fire up to [budget] times, stopping early on
             the first block (the burst found the FIFO limit) or on
             completion. The budget is this actor's share of the
             steady-state schedule, so a well-sized graph runs the
             whole sweep without a single blocked probe. *)
          let fired = ref 0 in
          let keep = ref true in
          let running = ref true in
          while !running do
            match a.step () with
            | Actor.Progress ->
              progressed := true;
              incr steps;
              incr fired;
              if !fired >= budget then running := false
            | Actor.Blocked ->
              incr steps;
              incr blocked;
              running := false
            | Actor.Done ->
              progressed := true;
              keep := false;
              running := false
          done;
          if tracing && (!fired > 0 || !keep) then
            Trace.instant ~cat:"sched"
              ~args:[ "fired", Trace.Int !fired; "round", Trace.Int !rounds ]
              a.name;
          !keep)
        !live;
    on_round !rounds;
    if (not !progressed) && !live <> [] then begin
      let s = { rounds = !rounds; steps = !steps; blocked_steps = !blocked } in
      raise (Deadlock (deadlock_message (List.map fst !live) s, s))
    end
  done;
  { rounds = !rounds; steps = !steps; blocked_steps = !blocked }
