module V = Wire.Value

(* Task actors and their connections.

   "A connect operation => creates a FIFO queue between tasks. When the
   program executes, the task creation and connection operators are
   reflected in an actual graph of runtime objects ... the runtime
   creates a thread for each task. These threads will block on the
   incoming connections until enough data is available" (paper
   section 4.1).

   OCaml 5 has real threads, but deterministic tests matter more here
   than parallel execution, so actors are cooperative: the scheduler
   steps them round-robin, and an actor reports whether it progressed,
   blocked on a queue, or finished. The blocking structure — who waits
   on which bounded FIFO — is identical to the threaded original. *)

(* A bounded FIFO connection carrying Lime values. Closing marks the
   end of the stream. *)
module Channel = struct
  type t = {
    capacity : int;
    q : V.t Queue.t;
    mutable closed : bool;
    mutable total_pushed : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Channel.create: capacity < 1";
    { capacity; q = Queue.create (); closed = false; total_pushed = 0 }

  let is_full t = Queue.length t.q >= t.capacity
  let is_empty t = Queue.is_empty t.q

  let push t v =
    if is_full t then invalid_arg "Channel.push: full";
    if t.closed then invalid_arg "Channel.push: closed";
    t.total_pushed <- t.total_pushed + 1;
    Queue.push v t.q

  let pop_opt t = Queue.take_opt t.q
  let close t = t.closed <- true

  let drained t = t.closed && Queue.is_empty t.q
  (** No more data will ever arrive. *)
end

type status = Progress | Blocked | Done

type t = {
  name : string;
  step : unit -> status;
  ports : (string * Channel.t) list;
      (** named connections, for diagnostics: which FIFO is this actor
          reading/writing, and in what state is it *)
}

let make ~name ?(ports = []) step = { name; step; ports }

(* e.g. "full", "empty", "3/16", "drained" — the states that matter
   when diagnosing a wedged graph. *)
let port_state (c : Channel.t) =
  let occupancy = Queue.length c.Channel.q in
  let base =
    if Channel.is_full c then "full"
    else if occupancy = 0 then "empty"
    else Printf.sprintf "%d/%d" occupancy c.Channel.capacity
  in
  if c.Channel.closed then base ^ ",closed" else base

let describe_ports (t : t) =
  match t.ports with
  | [] -> ""
  | ports ->
    "["
    ^ String.concat " "
        (List.map (fun (name, c) -> name ^ "=" ^ port_state c) ports)
    ^ "]"

(* --- the standard actors -------------------------------------------- *)

(* Produces the elements of an array, [rate] per step. *)
(* A rate <= 0 source never pushes while elements remain, so the graph
   wedges — the scheduler reports [Deadlock]. [Analysis.Graphlint]
   flags this statically (LMA002) before the graph ever runs. *)
let source ~name ~(rate : int) (elements : V.t list) (out : Channel.t) : t =
  let remaining = ref elements in
  let step () =
    if !remaining = [] then begin
      if not out.Channel.closed then Channel.close out;
      Done
    end
    else begin
      let pushed = ref 0 in
      while !pushed < rate && (not (Channel.is_full out)) && !remaining <> [] do
        match !remaining with
        | x :: rest ->
          Channel.push out x;
          remaining := rest;
          incr pushed
        | [] -> ()
      done;
      if !pushed > 0 then Progress else Blocked
    end
  in
  make ~name ~ports:[ "out", out ] step

(* Applies [f] to each element; one element per step. *)
let filter ~name ~(f : V.t -> V.t) (inp : Channel.t) (out : Channel.t) : t =
  let step () =
    if Channel.drained inp then begin
      if not out.Channel.closed then Channel.close out;
      Done
    end
    else if Channel.is_full out then Blocked
    else
      match Channel.pop_opt inp with
      | Some x ->
        Channel.push out (f x);
        Progress
      | None -> Blocked
  in
  make ~name ~ports:[ "in", inp; "out", out ] step

(* A device segment: collects input, launches the device, then emits
   the results. With [chunk = None] the whole stream is batched into a
   single launch (one crossing each way); with [chunk = Some k] the
   device is launched every [k] elements, trading per-launch overhead
   for earlier first results and a bounded staging buffer — the
   communication-granularity knob of experiment A6. *)
let device_segment ?(chunk : int option) ~name
    ~(launch : V.t list -> V.t list) (inp : Channel.t) (out : Channel.t) : t =
  let collected = ref [] in
  let count = ref 0 in
  let emitting = ref [] in
  let finished = ref false in
  let chunk_full () =
    match chunk with Some k -> !count >= max k 1 | None -> false
  in
  let fire () =
    emitting := launch (List.rev !collected);
    collected := [];
    count := 0
  in
  let step () =
    match !emitting with
    | x :: rest ->
      if Channel.is_full out then Blocked
      else begin
        Channel.push out x;
        emitting := rest;
        Progress
      end
    | [] ->
      if !finished then begin
        if not out.Channel.closed then Channel.close out;
        Done
      end
      else if chunk_full () then begin
        fire ();
        Progress
      end
      else begin
        match Channel.pop_opt inp with
        | Some x ->
          collected := x :: !collected;
          incr count;
          Progress
        | None ->
          if Channel.drained inp then begin
            finished := true;
            if !collected <> [] then fire ();
            Progress
          end
          else Blocked
      end
  in
  make ~name ~ports:[ "in", inp; "out", out ] step

(* Stores arriving elements into a destination array in order. *)
let sink ~name (dest : V.t) (inp : Channel.t) : t =
  let index = ref 0 in
  let step () =
    match Channel.pop_opt inp with
    | Some x ->
      Lime_ir.Interp.array_set dest !index x;
      incr index;
      Progress
    | None -> if Channel.drained inp then Done else Blocked
  in
  make ~name ~ports:[ "in", inp ] step
