(** The cooperative task scheduler.

    Two modes. {!run} steps every live actor round-robin until all
    have finished — blind demand-driven discovery. {!run_steady} fires
    actors in a precomputed steady-state order with per-sweep step
    budgets derived from the solved SDF repetition vector
    ([Analysis.Rates]), eliminating the blocked probes that dominate
    round-robin on deep or batching pipelines.

    In both modes, a full round in which nothing progresses is a
    wedged graph (a cycle of full/empty queues) and raises {!Deadlock}
    instead of spinning; the message embeds the final stats and lists
    every wedged actor with its channel states
    ([name[in=empty out=full]]) so the wedge is diagnosable from the
    error alone.

    When tracing is enabled ({!Support.Trace.enabled}), actor steps
    emit instant events (category ["sched"]). An actor's final [Done]
    return is bookkeeping, not work: it is neither counted as a step
    nor traced. *)

type stats = {
  rounds : int;  (** scheduling rounds until quiescence *)
  steps : int;  (** total actor steps taken *)
  blocked_steps : int;  (** steps that found the actor blocked *)
}

(** How the runtime drives a task graph: blind round-robin stepping,
    or the steady-state batched order when the rate algebra solved the
    graph's balance equations. *)
type mode = Round_robin | Steady_state

val mode_name : mode -> string
(** ["roundrobin"] / ["steady"] — the CLI spelling. *)

exception Deadlock of string * stats
(** The wedged-graph report plus the scheduler's partial stats at the
    moment of the wedge (rounds run, steps taken, blocked steps). The
    message itself embeds the same stats, so the report is
    self-contained even where only the string survives. *)

val run : ?on_round:(int -> unit) -> Actor.t list -> stats
(** Round-robin: one step per live actor per round. [on_round] is
    called after each completed round with the round number — the
    runtime uses it to sample channel occupancy into the trace. *)

val run_steady : ?on_round:(int -> unit) -> (Actor.t * int) list -> stats
(** Steady-state: each sweep gives every actor a burst of up to its
    budget steps (budgets below 1 are clamped to 1), ending the burst
    early on the first blocked step. Actors should be listed in
    topological (source-to-sink) order so one sweep can drain the
    whole pipeline. *)
