(** The cooperative task scheduler.

    Steps every live actor round-robin until all have finished. A full
    round in which nothing progresses is a wedged graph (a cycle of
    full/empty queues) and raises {!Deadlock} instead of spinning; the
    message lists every wedged actor with its channel states
    ([name[in=empty out=full]]) so the cycle is debuggable from the
    error alone.

    When tracing is enabled ({!Support.Trace.enabled}), every actor
    step emits an instant event (category ["sched"]) carrying the
    step's outcome and round number. *)

type stats = {
  rounds : int;  (** scheduling rounds until quiescence *)
  steps : int;  (** total actor steps taken *)
  blocked_steps : int;  (** steps that found the actor blocked *)
}

exception Deadlock of string * stats
(** The wedged-graph report plus the scheduler's partial stats at the
    moment of the wedge (rounds run, steps taken, blocked steps), so a
    deadlock is diagnosable without re-running under a profiler. *)

val run : ?on_round:(int -> unit) -> Actor.t list -> stats
(** [on_round] is called after each completed round with the round
    number — the runtime uses it to sample channel occupancy into the
    trace. *)
