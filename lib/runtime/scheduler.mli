(** The cooperative task scheduler.

    Steps every live actor round-robin until all have finished. A full
    round in which nothing progresses is a wedged graph (a cycle of
    full/empty queues) and raises {!Deadlock} instead of spinning; the
    message lists every wedged actor with its channel states
    ([name[in=empty out=full]]) so the cycle is debuggable from the
    error alone.

    When tracing is enabled ({!Support.Trace.enabled}), every actor
    step emits an instant event (category ["sched"]) carrying the
    step's outcome and round number. *)

exception Deadlock of string

type stats = {
  rounds : int;  (** scheduling rounds until quiescence *)
  steps : int;  (** total actor steps taken *)
  blocked_steps : int;  (** steps that found the actor blocked *)
}

val run : ?on_round:(int -> unit) -> Actor.t list -> stats
(** [on_round] is called after each completed round with the round
    number — the runtime uses it to sample channel occupancy into the
    trace. *)
