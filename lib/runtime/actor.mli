(** Task actors and their FIFO connections (paper section 4.1).

    A connect operation creates a FIFO queue between tasks; the runtime
    gives each task a thread that blocks on its incoming connection.
    Here actors are cooperative — the scheduler steps them and each
    reports progress, blockage, or completion — with the identical
    blocking structure, chosen for deterministic tests (DESIGN.md §5). *)

module V = Wire.Value

(** A bounded FIFO connection carrying Lime values (only values flow
    between tasks). Closing marks end-of-stream. *)
module Channel : sig
  type t = {
    capacity : int;
    q : V.t Queue.t;
    mutable closed : bool;
    mutable total_pushed : int;
  }

  val create : capacity:int -> t
  (** @raise Invalid_argument if [capacity < 1]. *)

  val is_full : t -> bool
  val is_empty : t -> bool

  val push : t -> V.t -> unit
  (** @raise Invalid_argument when full or closed. *)

  val pop_opt : t -> V.t option
  val close : t -> unit

  val drained : t -> bool
  (** Closed and empty: no more data will ever arrive. *)
end

type status = Progress | Blocked | Done

type t = {
  name : string;
  step : unit -> status;
  ports : (string * Channel.t) list;
      (** named connections for diagnostics (e.g. [["in", c1; "out", c2]]);
          the standard actors below declare theirs *)
}

val make : name:string -> ?ports:(string * Channel.t) list -> (unit -> status) -> t

val port_state : Channel.t -> string
(** ["full"], ["empty"], ["3/16"], with [",closed"] appended once the
    producer has closed the channel. *)

val describe_ports : t -> string
(** E.g. ["[in=empty out=full]"]; [""] when the actor declared no
    ports. Used by the scheduler's deadlock report. *)

val source : name:string -> rate:int -> V.t list -> Channel.t -> t
(** Produces the elements of a stream, up to [rate] per step (the
    argument of Lime's [arr.source(rate)]). Closes the channel when
    exhausted. *)

val filter : name:string -> f:(V.t -> V.t) -> Channel.t -> Channel.t -> t
(** Applies [f] elementwise, one element per step; propagates
    end-of-stream. *)

val device_segment :
  ?chunk:int ->
  name:string ->
  launch:(V.t list -> V.t list) ->
  Channel.t ->
  Channel.t ->
  t
(** A substituted subgraph: collects input, calls [launch] on the
    batch, then emits results. [chunk = Some k] launches every [k]
    elements (bounded staging, earlier results — experiment A6);
    [None] batches the whole stream into one launch. *)

val sink : name:string -> V.t -> Channel.t -> t
(** Stores arriving elements into the destination array in order. *)
