module Ir = Lime_ir.Ir
module I = Lime_ir.Interp
module Lmr = Lime_ir.Lower_mapreduce
module V = Wire.Value
module Codec = Wire.Codec
module Boundary = Wire.Boundary
module Trace = Support.Trace

exception Engine_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Engine_error s)) fmt

type cost_model =
  n:int -> Artifact.t option -> Ir.filter_info list -> float

type t = {
  unit_ : Bytecode.Compile.unit_;
  store_ : Store.t;
  mutable policy_ : Substitute.policy;
  fuse_ : bool;
      (** plan with fused artifacts and the fusion registry (default);
          fault recovery re-plans with fusion off to unfuse a faulted
          run per stage *)
  gpu_device : Gpu.Device.t;
  fpga_clock_ns : int;
  fifo_capacity : int;
  schedule : Scheduler.mode;
  metrics_ : Metrics.t;
  model_divergence : bool;
  chunk_elements : int option;
      (** device-launch granularity; [None] batches the whole stream *)
  max_retries : int;
      (** device-launch retries after a fault, before re-substitution *)
  retry_backoff_ns : float;  (** base of the exponential backoff *)
  mutable last_plan_ : string option;
  mutable cost_model_ : cost_model option;
      (** calibrated per-segment cost predictor (e.g. from
          [Placement]); when absent, the built-in static
          [estimate_cost] stands in *)
  replan_factor : float option;
      (** online re-planning: when a device segment's measured modeled
          service time exceeds the prediction by more than this
          factor, demote the artifact and re-substitute mid-run *)
  observed_ : (string, float) Hashtbl.t;
      (** per-artifact observed per-element cost (ns), recorded when a
          launch underperforms its model; overrides the prediction in
          subsequent planning *)
  steady_cache_ : (string, int list option) Hashtbl.t;
      (** solved steady-state step budgets per (template, plan,
          stream-shape) key, so repeated [Exec] runs of the same graph
          skip rebuilding and re-solving the rate graph *)
  lower_mapreduce : bool;
      (** execute map/reduce sites through the lowered
          scatter/worker/gather task graph instead of the legacy
          whole-array GPU hook *)
  mr_sites : Lmr.lowered Ir.String_map.t;
      (** the program's kernel sites, lowered, keyed by site UID *)
  map_chunks : int option;  (** forced scatter width for map sites *)
  reduce_chunks : int option;
      (** forced scatter width for reduce sites (chunked combining
          reassociates the fold — off by default unless the algebraic
          analysis proves the combiner associative) *)
  assoc_memo_ : (string, bool) Hashtbl.t;
      (** memoized [Analysis.Algebra.is_assoc_comm] verdicts per
          combiner function key *)
}

let create ?(policy = Substitute.Prefer_accelerators) ?(fuse = true)
    ?(gpu_device = Gpu.Device.gtx580) ?(fpga_clock_ns = 4)
    ?(fifo_capacity = 16) ?(schedule = Scheduler.Round_robin) ?boundary
    ?(model_divergence = true) ?chunk_elements ?(max_retries = 2)
    ?(retry_backoff_ns = 1000.0) ?cost_model ?replan_factor
    ?(lower_mapreduce = true) ?map_chunks ?reduce_chunks unit_ store_ =
  (* Validate at the boundary: [Actor.Channel.create] would otherwise
     raise [Invalid_argument] from deep inside graph construction. *)
  if fifo_capacity < 1 then
    fail "fifo_capacity must be at least 1 (got %d)" fifo_capacity;
  {
    unit_;
    store_;
    policy_ = policy;
    fuse_ = fuse;
    gpu_device;
    fpga_clock_ns;
    fifo_capacity;
    schedule;
    metrics_ = Metrics.create ?boundary ();
    model_divergence;
    chunk_elements;
    max_retries;
    retry_backoff_ns;
    last_plan_ = None;
    cost_model_ = cost_model;
    replan_factor;
    observed_ = Hashtbl.create 16;
    steady_cache_ = Hashtbl.create 16;
    lower_mapreduce;
    mr_sites =
      (if lower_mapreduce then
         Lmr.lower_program unit_.Bytecode.Compile.u_program
       else Ir.String_map.empty);
    map_chunks;
    reduce_chunks;
    assoc_memo_ = Hashtbl.create 8;
  }

let set_policy t p = t.policy_ <- p
let policy t = t.policy_
let fusing t = t.fuse_
let set_cost_model t f = t.cost_model_ <- Some f
let observed_costs t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.observed_ []
let schedule t = t.schedule
let metrics t = t.metrics_
let store t = t.store_
let program t = t.unit_.Bytecode.Compile.u_program
let last_plan t = t.last_plan_

(* --- wire helpers ---------------------------------------------------- *)

let rec wire_ty_of_value (v : V.t) : Codec.ty =
  match v with
  | V.Unit -> Codec.W_unit
  | V.Bool _ -> Codec.W_bool
  | V.Int _ -> Codec.W_int
  | V.Float _ -> Codec.W_float
  | V.Bit _ -> Codec.W_bit
  | V.Enum { enum; _ } -> Codec.W_enum enum
  | V.Bits _ -> Codec.W_bits
  | V.Int_array _ -> Codec.W_array Codec.W_int
  | V.Float_array _ -> Codec.W_array Codec.W_float
  | V.Bool_array _ -> Codec.W_array Codec.W_bool
  | V.Array [||] -> Codec.W_array Codec.W_int
  | V.Array a -> (
    match wire_ty_of_value a.(0) with
    | Codec.W_bit -> Codec.W_bits_boxed
    | elt -> Codec.W_array elt)
  | V.Tuple vs -> Codec.W_tuple (List.map wire_ty_of_value vs)

let pack_stream (elt : Ir.ty) (xs : V.t list) : V.t =
  let n = List.length xs in
  let arr = I.new_array elt n in
  List.iteri (fun i x -> I.array_set arr i x) xs;
  I.freeze arr

let unpack_stream (v : V.t) : V.t list =
  List.init (I.array_length v) (fun i -> I.array_get v i)

(* --- receiver-state snapshots ----------------------------------------- *)

(* A device launch over a stateful chain mutates receiver objects
   (register files, accumulators) in place. To retry a launch after a
   mid-flight fault — e.g. the result is lost crossing back to the
   host — the runtime must first rewind that state, or the retry would
   double-apply it and diverge from the bytecode reference. A snapshot
   deep-copies every mutable leaf; restore writes the copies back into
   the original object graph (in place, because the filter closures
   alias the original receivers). *)

let rec copy_value (v : V.t) : V.t =
  match v with
  | V.Int_array a -> V.Int_array (Array.copy a)
  | V.Float_array a -> V.Float_array (Array.copy a)
  | V.Bool_array a -> V.Bool_array (Array.copy a)
  | V.Array a -> V.Array (Array.map copy_value a)
  | V.Tuple vs -> V.Tuple (List.map copy_value vs)
  | ( V.Unit | V.Bool _ | V.Int _ | V.Float _ | V.Bit _ | V.Enum _
    | V.Bits _ ) as v ->
    v

let rec snapshot_v (v : I.v) : I.v =
  match v with
  | I.Prim p -> I.Prim (copy_value p)
  | I.Obj o -> I.Obj { o with I.obj_fields = Array.map snapshot_v o.I.obj_fields }
  | I.Graph_handle _ -> v

let rec restore_v ~(snap : I.v) ~(into : I.v) : unit =
  match snap, into with
  | I.Obj s, I.Obj o ->
    Array.iteri
      (fun i sv ->
        match sv, o.I.obj_fields.(i) with
        | I.Obj _, (I.Obj _ as ov) -> restore_v ~snap:sv ~into:ov
        | _ -> o.I.obj_fields.(i) <- snapshot_v sv)
      s.I.obj_fields
  | _ -> ()

(* --- device dispatch -------------------------------------------------- *)

(* Ship a value to the device through the full Figure-3 path and hand
   back the device-side copy. *)
let ship_to_device ?boundary t (v : V.t) : V.t =
  let b = Option.value boundary ~default:(Metrics.boundary t.metrics_) in
  let ty = wire_ty_of_value v in
  let native = Boundary.to_device b ty v in
  Boundary.Native.to_value native

(* Mirror path: pack the device result densely, cross, deserialize.
   [streaming] is the fused-segment return: the producer overlaps the
   transfer with compute, so the crossing pays bandwidth only (see
   {!Wire.Boundary.to_host}). *)
let ship_to_host ?boundary ?streaming t (v : V.t) : V.t =
  let b = Option.value boundary ~default:(Metrics.boundary t.metrics_) in
  let ty = wire_ty_of_value v in
  let native = Boundary.native_of_value ty v in
  Boundary.to_host ?streaming b native

let gpu_allowed t =
  List.mem Artifact.Gpu (Substitute.device_order t.policy_)

(* Total modeled time accumulated so far: the interpreter under the
   CPU model plus every device kernel, native segment and boundary
   crossing. Deltas around a launch give the measured service time the
   re-planner compares against its prediction. *)
let modeled_ns t =
  Metrics.modeled_cpu_ns t.metrics_ +. Metrics.modeled_accelerator_ns t.metrics_

(* Every device launch runs inside a `launch` span carrying the element
   count up front and, at close, the modeled service-time delta — the
   observation the drift report joins against profile-store
   predictions. A faulted attempt still closes its span (tagged), so
   the timeline shows the retry, but drift skips it. *)
let with_launch_span t ~elements name f =
  if not (Trace.enabled ()) then f ()
  else begin
    let sp =
      Trace.begin_span ~cat:"launch"
        ~args:[ "elements", Trace.Int elements ]
        name
    in
    let before = modeled_ns t in
    match f () with
    | r ->
      Trace.end_span
        ~args:[ "modeled_ns", Trace.Float (modeled_ns t -. before) ]
        sp;
      r
    | exception e ->
      Trace.end_span
        ~args:
          [
            "modeled_ns", Trace.Float (modeled_ns t -. before);
            "faulted", Trace.Bool true;
          ]
        sp;
      raise e
  end

let run_gpu_map t (site : Ir.map_site) (args : I.v list) : I.v =
  let host_args = List.map I.prim_exn args in
  let elements =
    match host_args with
    | a :: _ -> ( try I.array_length a with _ -> 1)
    | [] -> 0
  in
  with_launch_span t ~elements ("gpu:" ^ site.map_uid) (fun () ->
      let dev_args = List.map (ship_to_device t) host_args in
      let result, timing =
        Gpu.Simt.run_map ~device:t.gpu_device
          ~model_divergence:t.model_divergence (program t) site dev_args
      in
      Metrics.add_gpu_kernel t.metrics_ ~ns:timing.Gpu.Simt.kernel_ns;
      Metrics.add_substitution t.metrics_ site.map_uid Artifact.Gpu;
      I.Prim (ship_to_host t result))

let run_gpu_reduce t (site : Ir.reduce_site) (arg : I.v) : I.v =
  let elements = try I.array_length (I.prim_exn arg) with _ -> 1 in
  with_launch_span t ~elements ("gpu:" ^ site.red_uid) (fun () ->
      let dev_arg = ship_to_device t (I.prim_exn arg) in
      let result, timing =
        Gpu.Simt.run_reduce ~device:t.gpu_device
          ~model_divergence:t.model_divergence (program t) site dev_arg
      in
      Metrics.add_gpu_kernel t.metrics_ ~ns:timing.Gpu.Simt.kernel_ns;
      Metrics.add_substitution t.metrics_ site.red_uid Artifact.Gpu;
      I.Prim (ship_to_host t result))

(* --- task-graph co-execution ------------------------------------------ *)

(* Pair each template node with its dynamic operands. *)
let bind_operands (template : Ir.graph_template) (ops : I.v list) =
  let take k ops =
    let rec go k acc = function
      | rest when k = 0 -> List.rev acc, rest
      | x :: rest -> go (k - 1) (x :: acc) rest
      | [] -> fail "graph template operand underflow"
    in
    go k [] ops
  in
  let nodes, rest =
    List.fold_left
      (fun (acc, ops) node ->
        let mine, ops = take (Ir.tnode_operand_count node) ops in
        (node, mine) :: acc, ops)
      ([], ops) template.Ir.gt_nodes
  in
  if rest <> [] then fail "graph template operand overflow";
  List.rev nodes

type bound_graph = {
  bg_uid : string;  (* the graph template's UID: the schedule-cache key *)
  bg_source : V.t;  (* source array *)
  bg_rate : int;
  bg_filters : (Ir.filter_info * I.v option) list;
  bg_sink : V.t;  (* destination array *)
}

let bound_graph_of template ops : bound_graph =
  match bind_operands template ops with
  | (Ir.N_source _, [ arr; rate ]) :: rest -> (
    let rate = match I.prim_exn rate with V.Int r -> r | _ -> 1 in
    let rec split fs = function
      | [ (Ir.N_sink _, [ dest ]) ] -> List.rev fs, dest
      | (Ir.N_filter f, []) :: rest -> split ((f, None) :: fs) rest
      | (Ir.N_filter f, [ recv ]) :: rest -> split ((f, Some recv) :: fs) rest
      | _ -> fail "malformed graph template"
    in
    let fs, dest = split [] rest in
    {
      bg_uid = template.Ir.gt_uid;
      bg_source = I.prim_exn arr;
      bg_rate = rate;
      bg_filters = fs;
      bg_sink = I.prim_exn dest;
    })
  | _ -> fail "malformed graph template"

let filter_fn_key (f : Ir.filter_info) =
  match f.target with
  | Ir.F_static key -> key
  | Ir.F_instance (cls, m) -> cls ^ "." ^ m

(* One bytecode filter actor: every element application is a VM call,
   charged to the CPU model. *)
let bytecode_filter_actor t ((f : Ir.filter_info), receiver) inp out =
  let key = filter_fn_key f in
  let span_name = "bc:" ^ f.uid in
  let apply x =
    Trace.with_span ~cat:"vm" span_name (fun () ->
        let args =
          match receiver with
          | Some r -> [ r; I.Prim x ]
          | None -> [ I.Prim x ]
        in
        let r = Bytecode.Vm.run t.unit_ key args in
        Metrics.add_vm_instructions t.metrics_ r.Bytecode.Vm.executed;
        I.prim_exn r.Bytecode.Vm.value)
  in
  Actor.filter ~name:span_name ~f:apply inp out

(* Fault aliasing for fused segments: specs written against the
   pre-fusion segment names (each member uid, and the plain chain uid)
   keep firing on the fused segment, so injection campaigns survive
   fusion; a "fuse" instant marks the launch on the timeline. *)
let fused_prelude t ~device uid =
  let members = Artifact.fused_members uid in
  Support.Fault.check_any ~device
    (uid :: String.concat "+" members :: members);
  Metrics.add_fused_launch t.metrics_;
  if Trace.enabled () then
    Trace.instant ~cat:"fuse"
      ~args:
        [
          "device", Trace.Str device;
          "stages", Trace.Int (List.length members);
        ]
      uid

(* A GPU-substituted segment: batch the stream across the boundary and
   run the fused elementwise kernel. A cross-filter fused segment
   ([Artifact.is_fused_uid]) additionally streams its result home —
   the kernel writes back as it computes, so the return crossing pays
   bandwidth only. *)
let gpu_batch t (artifact : Artifact.gpu_artifact)
    (filters : (Ir.filter_info * I.v option) list) (xs : V.t list) : V.t list =
  let chain_filters =
    match artifact.ga_kind with
    | Artifact.G_filter_chain fs -> fs
    | Artifact.G_map _ | Artifact.G_reduce _ ->
      fail "artifact %s is not a filter chain" artifact.ga_uid
  in
  let chain = List.map filter_fn_key chain_filters in
  let input_ty = (List.hd chain_filters).Ir.input in
  let output_ty =
    (List.nth chain_filters (List.length chain_filters - 1)).Ir.output
  in
  ignore filters;
  let fused = Artifact.is_fused_uid artifact.ga_uid in
  if fused then fused_prelude t ~device:"gpu" artifact.ga_uid;
  with_launch_span t ~elements:(List.length xs) ("gpu:" ^ artifact.ga_uid)
    (fun () ->
      let packed = pack_stream input_ty xs in
      let dev_input = ship_to_device t packed in
      let result, timing =
        Gpu.Simt.run_filter_chain ~device:t.gpu_device
          ~model_divergence:t.model_divergence ~uid:artifact.ga_uid (program t)
          ~chain ~output_ty dev_input
      in
      Metrics.add_gpu_kernel t.metrics_ ~ns:timing.Gpu.Simt.kernel_ns;
      unpack_stream (ship_to_host ~streaming:fused t result))

(* An FPGA-substituted segment: synthesize the pipeline (stateful
   receivers become register files) and run it in the RTL simulator. *)
let fpga_batch t (artifact : Artifact.fpga_artifact)
    (filters : (Ir.filter_info * I.v option) list) (xs : V.t list) : V.t list =
  let fused = Artifact.is_fused_uid artifact.fa_uid in
  if fused then fused_prelude t ~device:"fpga" artifact.fa_uid;
  with_launch_span t ~elements:(List.length xs) ("fpga:" ^ artifact.fa_uid)
    (fun () ->
      let pipeline =
        if fused then
          (* the fused module is fully pipelined (II = 1): the composed
             datapath behind a shift register, one element per cycle *)
          Rtl.Synth.pipeline_of_chain (program t) ~name:artifact.fa_uid
            ~fifo_depth:t.fifo_capacity ~pipelined:true
            (List.map (fun f -> f, None) artifact.fa_filters)
        else
          Rtl.Synth.pipeline_of_chain (program t) ~name:artifact.fa_uid
            ~fifo_depth:t.fifo_capacity filters
      in
      let input_ty = Rtl.Netlist.input_ty pipeline in
      let packed = pack_stream input_ty xs in
      let dev_input = unpack_stream (ship_to_device t packed) in
      let outputs, stats = Rtl.Sim.run (program t) pipeline dev_input in
      Metrics.add_fpga_run t.metrics_ ~cycles:stats.Rtl.Sim.cycles
        ~ns:(float_of_int (stats.Rtl.Sim.cycles * t.fpga_clock_ns));
      let out_packed = pack_stream (Rtl.Netlist.output_ty pipeline) outputs in
      unpack_stream (ship_to_host ~streaming:fused t out_packed))

(* A native-substituted segment: the chain runs as a compiled shared
   library loaded into the process (paper section 5). Functionally the
   code is the same bytecode (identical results); the cost model
   charges the compiled-C rate, and marshaling crosses the cheap
   JNI-only boundary rather than PCIe. *)
let native_batch t (artifact : Artifact.native_artifact)
    (filters : (Ir.filter_info * I.v option) list) (xs : V.t list) : V.t list =
  Support.Fault.check ~device:"native" ~segment:artifact.na_uid;
  let nb = Metrics.native_boundary t.metrics_ in
  let input_ty = (List.hd artifact.na_filters).Ir.input in
  let output_ty =
    (List.nth artifact.na_filters (List.length artifact.na_filters - 1))
      .Ir.output
  in
  with_launch_span t ~elements:(List.length xs) ("native:" ^ artifact.na_uid)
    (fun () ->
      let packed = pack_stream input_ty xs in
      let dev_input = unpack_stream (ship_to_device ~boundary:nb t packed) in
      let apply x ((f : Ir.filter_info), receiver) =
        let args =
          match receiver with
          | Some r -> [ r; I.Prim x ]
          | None -> [ I.Prim x ]
        in
        let r = Bytecode.Vm.run t.unit_ (filter_fn_key f) args in
        Metrics.add_native_instructions t.metrics_ r.Bytecode.Vm.executed;
        I.prim_exn r.Bytecode.Vm.value
      in
      let outputs =
        List.map (fun x -> List.fold_left apply x filters) dev_input
      in
      unpack_stream
        (ship_to_host ~boundary:nb t (pack_stream output_ty outputs)))

let batch_of_artifact t (artifact : Artifact.t) pairs xs =
  match artifact with
  | Artifact.Gpu_kernel g -> gpu_batch t g pairs xs
  | Artifact.Fpga_module f -> fpga_batch t f pairs xs
  | Artifact.Native_binary n -> native_batch t n pairs xs

(* Cost model for adaptive placement (paper section 7, future work:
   "runtime introspection and adaptation of the task-graph partitioning
   so that tasks run where they are best suited"). Static code size
   stands in for per-element dynamic instructions; [n] is the observed
   stream length. *)
let estimate_cost t ~n (artifact : Artifact.t option)
    (chain : Ir.filter_info list) : float =
  let nf = float_of_int n in
  let chain_insns =
    List.fold_left
      (fun acc f ->
        match Ir.String_map.find_opt (filter_fn_key f) t.unit_.Bytecode.Compile.u_funcs with
        | Some code -> acc + Array.length code.Bytecode.Compile.c_insns
        | None -> acc + 16)
      0 chain
    |> float_of_int
  in
  let elem_bytes = 4.0 in
  match artifact with
  | None ->
    (* interpreted bytecode, no boundary *)
    nf *. chain_insns *. 6.0
  | Some (Artifact.Native_binary _) ->
    let b = Metrics.native_boundary t.metrics_ in
    (2.0 *. Boundary.transfer_ns b (int_of_float (nf *. elem_bytes)))
    +. (nf *. chain_insns *. 0.75)
  | Some (Artifact.Gpu_kernel g) ->
    let b = Metrics.boundary t.metrics_ in
    let lanes = float_of_int (Gpu.Device.total_lanes t.gpu_device) in
    let bytes = int_of_float (nf *. elem_bytes) in
    let return_ns =
      (* a fused kernel streams its result home: bandwidth only *)
      if Artifact.is_fused_uid g.Artifact.ga_uid then
        Boundary.streaming_transfer_ns b bytes
      else Boundary.transfer_ns b bytes
    in
    Boundary.transfer_ns b bytes +. return_ns
    +. t.gpu_device.Gpu.Device.launch_overhead_ns
    +. Gpu.Device.cycles_to_ns t.gpu_device (nf *. chain_insns /. lanes)
  | Some (Artifact.Fpga_module f) ->
    let b = Metrics.boundary t.metrics_ in
    let bytes = int_of_float (nf *. elem_bytes) in
    if Artifact.is_fused_uid f.Artifact.fa_uid then
      (* fully pipelined fused module: one element per cycle after the
         fill latency, result streamed home at bandwidth cost *)
      let latency = Float.max 1.0 (chain_insns /. 4.0) in
      let cycles = nf +. latency +. 4.0 in
      Boundary.transfer_ns b bytes
      +. Boundary.streaming_transfer_ns b bytes
      +. (cycles *. float_of_int t.fpga_clock_ns)
    else
      (* ~3 cycles per element per unpipelined stage, pipelined overlap *)
      let cycles = nf *. 3.0 +. (3.0 *. float_of_int (List.length chain)) in
      (2.0 *. Boundary.transfer_ns b bytes)
      +. (cycles *. float_of_int t.fpga_clock_ns)

let observed_key (a : Artifact.t) =
  Artifact.uid a ^ "@" ^ Artifact.device_name (Artifact.device a)

(* The cost used for planning: the calibrated model when one is
   installed (falling back to the static estimate), overridden by any
   observed per-element cost recorded when that artifact underperformed
   — [max] so a demotion can only make an artifact less attractive. *)
let effective_cost t ~n (artifact : Artifact.t option)
    (chain : Ir.filter_info list) : float =
  let base =
    match t.cost_model_ with
    | Some f -> f ~n artifact chain
    | None -> estimate_cost t ~n artifact chain
  in
  match artifact with
  | None -> base
  | Some a -> (
    match Hashtbl.find_opt t.observed_ (observed_key a) with
    | Some per_elem -> Float.max base (per_elem *. float_of_int n)
    | None -> base)

let plan_for ?(force_adaptive = false) ?fuse t ~n filters_info =
  let fuse = Option.value fuse ~default:t.fuse_ in
  match t.policy_ with
  | Substitute.Adaptive ->
    Substitute.plan_adaptive ~fuse ~cost:(effective_cost t ~n) t.store_
      filters_info
  | _ when force_adaptive ->
    (* online re-planning under a manual policy: the observed costs
       must be honored or the re-plan would pick the same device *)
    Substitute.plan_adaptive ~fuse ~cost:(effective_cost t ~n) t.store_
      filters_info
  | _ -> Substitute.plan ~fuse t.policy_ t.store_ filters_info

(* --- the failure protocol ---------------------------------------------- *)

(* The paper's safety invariant — "every task always has a CPU
   implementation" (the frontend lowers the whole program to bytecode)
   — makes device artifacts optimizations, never requirements. The
   protocol that enforces it at runtime:

     1. a device launch that raises {!Support.Fault.Device_fault} is
        retried up to [max_retries] times, after rewinding receiver
        state and a modeled exponential backoff;
     2. when retries are exhausted the faulty device is quarantined in
        the store and the segment's filters are re-planned under the
        same policy — the re-plan can only choose still-healthy
        devices, and falls out at bytecode;
     3. re-planned device segments get the same protection, so a run
        terminates even when every device model is failing: each
        fallback removes one device, and the bytecode base case cannot
        fault.

   Real device errors ([Gpu.Simt.Device_error],
   [Rtl.Sim.Simulation_error]) are not retried — they indicate a
   broken artifact, not a transient launch failure, and keep
   propagating to the caller. *)

let trace_fault_event name ~uid ~attempt extra =
  if Trace.enabled () then
    Trace.instant ~cat:"fault"
      ~args:([ "segment", Trace.Str uid; "attempt", Trace.Int attempt ] @ extra)
      name

(* Apply one bytecode filter to a whole batch, in stream order —
   element order is what stateful receivers observe, and a linear
   chain makes filter-at-a-time equivalent to the pipelined actor
   schedule. *)
let bytecode_apply_batch t ((f : Ir.filter_info), receiver) xs =
  let key = filter_fn_key f in
  let span_name = "bc:" ^ f.uid in
  List.map
    (fun x ->
      Trace.with_span ~cat:"vm" span_name (fun () ->
          let args =
            match receiver with
            | Some r -> [ r; I.Prim x ]
            | None -> [ I.Prim x ]
          in
          let r = Bytecode.Vm.run t.unit_ key args in
          Metrics.add_vm_instructions t.metrics_ r.Bytecode.Vm.executed;
          I.prim_exn r.Bytecode.Vm.value))
    xs

(* Run one device segment over a batch with retries; on exhaustion,
   quarantine the device and re-substitute the segment's filters. *)
let rec run_segment_with_recovery t (artifact : Artifact.t)
    (pairs : (Ir.filter_info * I.v option) list) (xs : V.t list) : V.t list =
  let uid = Artifact.uid artifact in
  let device = Artifact.device artifact in
  let receivers = List.filter_map snd pairs in
  let snaps = List.map snapshot_v receivers in
  let rewind () =
    List.iter2 (fun snap into -> restore_v ~snap ~into) snaps receivers
  in
  let rec attempt k =
    match batch_of_artifact t artifact pairs xs with
    | outputs ->
      (* the segment's code and staging buffers are now on the device:
         record residency so a data-aware scheduler (lib/serve) can
         prefer this device for the next job touching the same chain *)
      Store.note_resident t.store_ ~device ~uid;
      outputs
    | exception Support.Fault.Device_fault info ->
      Metrics.add_device_fault t.metrics_;
      rewind ();
      if k < t.max_retries then begin
        let backoff = t.retry_backoff_ns *. (2.0 ** float_of_int k) in
        Metrics.add_retry t.metrics_ ~backoff_ns:backoff;
        trace_fault_event
          ("retry:" ^ Artifact.device_name device)
          ~uid ~attempt:(k + 1)
          [ "backoff_ns", Trace.Float backoff ];
        (* the backoff is modeled, not slept: the span marks where the
           delay sits on the timeline and carries the modeled ns *)
        if Trace.enabled () then
          Trace.end_span
            (Trace.begin_span ~cat:"backoff"
               ~args:
                 [
                   "backoff_ns", Trace.Float backoff;
                   "attempt", Trace.Int (k + 1);
                 ]
               ("backoff:" ^ Artifact.device_name device));
        attempt (k + 1)
      end
      else begin
        Store.quarantine t.store_ ~device ~reason:info.Support.Fault.f_reason;
        Metrics.add_resubstitution t.metrics_;
        trace_fault_event "resubstitute" ~uid ~attempt:k
          [
            "quarantined", Trace.Str (Artifact.device_name device);
            "reason", Trace.Str info.Support.Fault.f_reason;
          ];
        if Artifact.is_fused_uid uid then begin
          (* unfuse: re-plan each stage separately so the segment falls
             back per stage (and ultimately to per-stage bytecode)
             rather than onto another device's fused artifact *)
          Metrics.add_unfuse t.metrics_;
          if Trace.enabled () then
            Trace.instant ~cat:"unfuse"
              ~args:
                [
                  "device", Trace.Str (Artifact.device_name device);
                  "stages", Trace.Int (List.length pairs);
                ]
              uid;
          run_resubstituted ~fuse:false t pairs xs
        end
        else run_resubstituted t pairs xs
      end
  in
  attempt 0

(* Re-plan a failed (or demoted) segment's filters against the
   quarantined store and execute the new plan inline over the
   collected batch. [force_adaptive] is the online re-planning path:
   plan by effective cost even under a manual policy, so the observed
   underperformance actually changes the placement. [fuse:false] is
   the unfuse path after a fused segment faulted. *)
and run_resubstituted ?force_adaptive ?fuse t
    (pairs : (Ir.filter_info * I.v option) list) (xs : V.t list) : V.t list =
  let filters_info = List.map fst pairs in
  let plan =
    plan_for ?force_adaptive ?fuse t ~n:(List.length xs) filters_info
  in
  let remaining = ref pairs in
  let take n =
    let rec go n acc =
      if n = 0 then List.rev acc
      else
        match !remaining with
        | x :: rest ->
          remaining := rest;
          go (n - 1) (x :: acc)
        | [] -> fail "re-substitution plan misaligned with segment"
    in
    go n []
  in
  List.fold_left
    (fun vals segment ->
      match segment with
      | Substitute.S_bytecode fs ->
        (* a fused filter covers several of the original (filter,
           receiver) pairs but executes as one VM call per element *)
        List.fold_left
          (fun vs (f : Ir.filter_info) ->
            if Artifact.is_fused_uid f.Ir.uid then begin
              ignore (take (List.length (Artifact.fused_members f.Ir.uid)));
              bytecode_apply_batch t (f, None) vs
            end
            else bytecode_apply_batch t (List.hd (take 1)) vs)
          vals fs
      | Substitute.S_device (a, fs) ->
        let pairs' = take (List.length fs) in
        Metrics.add_substitution t.metrics_ (Artifact.chain_uid fs)
          (Artifact.device a);
        run_segment_with_recovery t a pairs' vals)
    xs plan

(* The trace record of one substitution decision: the chosen device
   plus, for each alternative device, whether an artifact existed and
   lost the preference order or was never produced — the "why did my
   chain not run on X" answer. *)
let trace_substitution t ~uid ~filters chosen =
  let chosen_name =
    match chosen with
    | Some d -> Artifact.device_name d
    | None -> "bytecode"
  in
  let rejected =
    List.filter_map
      (fun d ->
        if chosen = Some d then None
        else
          Some
            (Artifact.device_name d ^ ":"
            ^
            match Store.find_on t.store_ ~uid ~device:d with
            | Some _ -> "available"
            | None -> "no-artifact"))
      [ Artifact.Gpu; Artifact.Fpga; Artifact.Native ]
  in
  Trace.instant ~cat:"substitute"
    ~args:
      [
        "device", Trace.Str chosen_name;
        "filters", Trace.Int filters;
        "rejected", Trace.Str (String.concat " " rejected);
      ]
    uid

let run_bound_graph t (bg : bound_graph) : unit =
  let filters_info = List.map fst bg.bg_filters in
  let n = I.array_length bg.bg_source in
  let plan = plan_for t ~n filters_info in
  t.last_plan_ <- Some (Substitute.describe_plan plan);
  (* Record chosen substitutions. *)
  List.iter
    (function
      | Substitute.S_device (a, fs) ->
        let uid = Artifact.chain_uid fs in
        Metrics.add_substitution t.metrics_ uid (Artifact.device a);
        if Trace.enabled () then
          trace_substitution t ~uid ~filters:(List.length fs)
            (Some (Artifact.device a))
      | Substitute.S_bytecode fs ->
        if Trace.enabled () then
          trace_substitution t ~uid:(Artifact.chain_uid fs)
            ~filters:(List.length fs) None)
    plan;
  (* The planned chain's rate signature. Steady-state mode solves its
     SDF balance equations ([Analysis.Rates]) and turns the repetition
     vector into per-actor step budgets plus a schedule-sized FIFO
     capacity, so one sweep drains the whole pipeline without blocked
     probes. Unsolvable graphs (a non-positive rate), empty streams
     and fault-injection runs (re-substitution changes the effective
     rates mid-flight) keep the dynamic round-robin scheduler. *)
  let kinds =
    (`Source
    :: List.concat_map
         (function
           | Substitute.S_bytecode fs -> List.map (fun _ -> `Filter) fs
           | Substitute.S_device _ -> [ `Device ])
         plan)
    @ [ `Sink ]
  in
  (* The solved schedule depends only on the template, the chosen
     plan, the stream shape and the chunk granularity — cache it per
     session so repeated [Exec] runs of the same graph skip rebuilding
     and re-solving the rate graph (common once the planner drives
     repeated solves). Fault-injection runs bypass steady mode (and
     hence the cache) entirely. *)
  let solve_steady_budgets () =
    begin
      let module R = Analysis.Rates in
      let burst_of = function
        | `Source -> bg.bg_rate
        | `Filter | `Sink -> 1
        | `Device -> (
          match t.chunk_elements with Some k -> max k 1 | None -> n)
      in
      let stage = Array.of_list kinds in
      let name i = "s" ^ string_of_int i in
      let edges =
        List.init
          (Array.length stage - 1)
          (fun i ->
            {
              R.e_src = name i;
              e_dst = name (i + 1);
              e_push = Analysis.Interval.of_int (burst_of stage.(i));
              e_pop =
                Analysis.Interval.of_int
                  (match stage.(i + 1) with
                  | `Sink -> 1
                  | k -> burst_of k);
              e_init = 0;
            })
      in
      let g =
        { R.g_actors = List.mapi (fun i _ -> name i) kinds; g_edges = edges }
      in
      match R.solve g with
      | Error _ -> None
      | Ok sched ->
        let reps = Array.of_list (List.map snd sched.R.s_reps) in
        (* Iterations of the steady schedule to move the whole stream:
           the source pushes reps(source) * rate tokens per iteration. *)
        let per_iter = reps.(0) * max bg.bg_rate 1 in
        let iterations = (n + per_iter - 1) / per_iter in
        let budget i kind =
          (* Steps one firing costs in the actor model: sources,
             filters and sinks move one burst per step; a device
             segment collects its pop burst one element per step,
             fires, then emits one element per step. The +4 slack
             absorbs the drain/close steps at end of stream. *)
          let per_firing =
            match kind with
            | `Source | `Filter | `Sink -> 1
            | `Device -> (
              match t.chunk_elements with
              | Some k -> (2 * max k 1) + 1
              | None -> (2 * n) + 1)
          in
          (iterations * reps.(i) * per_firing) + 4
        in
        Some (List.mapi budget kinds)
    end
  in
  let steady_budgets =
    if t.schedule <> Scheduler.Steady_state || n = 0 || Support.Fault.enabled ()
    then None
    else begin
      let key =
        Printf.sprintf "%s|%s|n=%d|rate=%d|chunk=%s" bg.bg_uid
          (Substitute.describe_plan plan)
          n bg.bg_rate
          (match t.chunk_elements with
          | Some k -> string_of_int k
          | None -> "all")
      in
      match Hashtbl.find_opt t.steady_cache_ key with
      | Some cached ->
        Metrics.add_sched_cache_hit t.metrics_;
        cached
      | None ->
        let solved = solve_steady_budgets () in
        Hashtbl.replace t.steady_cache_ key solved;
        solved
    end
  in
  let capacity =
    match steady_budgets with
    | Some _ ->
      (* Size the FIFOs from the schedule so a steady sweep's batched
         bursts fit; the clamp bounds memory on huge streams (the
         sweep then just takes a few extra rounds). *)
      max t.fifo_capacity (min n 4096)
    | None -> t.fifo_capacity
  in
  (* Walk the plan, consuming (filter, receiver) pairs in order. *)
  let remaining = ref bg.bg_filters in
  let take n =
    let rec go n acc =
      if n = 0 then List.rev acc
      else
        match !remaining with
        | x :: rest ->
          remaining := rest;
          go (n - 1) (x :: acc)
        | [] -> fail "substitution plan misaligned with graph"
    in
    go n []
  in
  let channels = ref [] in
  let new_channel () =
    let c = Actor.Channel.create ~capacity in
    channels := (Printf.sprintf "ch%d" (List.length !channels), c) :: !channels;
    c
  in
  let src_ch = new_channel () in
  let elements = unpack_stream bg.bg_source in
  let source = Actor.source ~name:"source" ~rate:bg.bg_rate elements src_ch in
  let actors = ref [ source ] in
  let cur_ch = ref src_ch in
  List.iter
    (fun segment ->
      match segment with
      | Substitute.S_bytecode fs ->
        List.iter
          (fun (f_info : Ir.filter_info) ->
            (* a fused filter consumes its members' (filter, receiver)
               pairs but runs as one actor over the fused function *)
            let pair =
              if Artifact.is_fused_uid f_info.Ir.uid then begin
                ignore
                  (take (List.length (Artifact.fused_members f_info.Ir.uid)));
                f_info, None
              end
              else List.hd (take 1)
            in
            let out = new_channel () in
            actors := bytecode_filter_actor t pair !cur_ch out :: !actors;
            cur_ch := out)
          fs
      | Substitute.S_device (a, fs) ->
        let pairs = take (List.length fs) in
        let out = new_channel () in
        let name =
          Artifact.device_name (Artifact.device a) ^ ":" ^ Artifact.uid a
        in
        (* The launch carries the full failure protocol: retries with
           backoff, then quarantine + re-substitution down to
           bytecode — so a faulty device never wedges the graph.

           With [replan_factor] set it also closes the planning loop:
           each launch's measured modeled service time is compared
           against the cost model's prediction, and a launch that
           underperforms by more than the factor demotes the artifact
           (its observed per-element cost overrides the model) and
           routes the segment's remaining chunks through the mid-run
           re-substitution path. *)
        let demoted = ref false in
        let launch xs =
          if !demoted then run_resubstituted ~force_adaptive:true t pairs xs
          else begin
            let before = modeled_ns t in
            let outputs = run_segment_with_recovery t a pairs xs in
            (match t.replan_factor with
            | Some factor when xs <> [] ->
              let elements = List.length xs in
              let measured = modeled_ns t -. before in
              let predicted = effective_cost t ~n:elements (Some a) fs in
              if predicted > 0.0 && measured > factor *. predicted then begin
                Hashtbl.replace t.observed_ (observed_key a)
                  (measured /. float_of_int elements);
                demoted := true;
                Metrics.add_replan t.metrics_;
                if Trace.enabled () then
                  Trace.instant ~cat:"replan"
                    ~args:
                      [
                        "device",
                          Trace.Str (Artifact.device_name (Artifact.device a));
                        "measured_ns", Trace.Float measured;
                        "predicted_ns", Trace.Float predicted;
                        "factor", Trace.Float factor;
                      ]
                    (Artifact.uid a)
              end
            | _ -> ());
            outputs
          end
        in
        actors :=
          Actor.device_segment ?chunk:t.chunk_elements ~name ~launch !cur_ch
            out
          :: !actors;
        cur_ch := out)
    plan;
  let sink = Actor.sink ~name:"sink" bg.bg_sink !cur_ch in
  actors := sink :: !actors;
  (* Sample every FIFO's occupancy each scheduling round, so the trace
     shows where back-pressure builds up over time. *)
  let sample_channels =
    if not (Trace.enabled ()) then fun _ -> ()
    else
      let named = List.rev !channels in
      fun _round ->
        List.iter
          (fun (name, (c : Actor.Channel.t)) ->
            Trace.counter ("fifo:" ^ name)
              [ "occupancy", float_of_int (Queue.length c.Actor.Channel.q) ])
          named
  in
  Trace.with_span ~cat:"runtime"
    ~args:
      [
        "elements", Trace.Int n;
        "plan", Trace.Str (Substitute.describe_plan plan);
        ( "schedule",
          Trace.Str
            (match steady_budgets with
            | Some _ -> Scheduler.mode_name Scheduler.Steady_state
            | None -> Scheduler.mode_name Scheduler.Round_robin) );
      ]
    "task-graph"
    (fun () ->
      let ordered = List.rev !actors in
      let stats, steady =
        match steady_budgets with
        | Some budgets ->
          ( Scheduler.run_steady ~on_round:sample_channels
              (List.combine ordered budgets),
            true )
        | None -> Scheduler.run ~on_round:sample_channels ordered, false
      in
      Metrics.add_scheduler_run t.metrics_ ~steady
        ~fallback:(t.schedule = Scheduler.Steady_state && not steady)
        ~rounds:stats.Scheduler.rounds ~steps:stats.Scheduler.steps
        ~blocked_steps:stats.Scheduler.blocked_steps)

(* --- lowered map/reduce execution -------------------------------------- *)

(* Kernel sites executed as task graphs ([Lime_ir.Lower_mapreduce]):
   a scatter source splits the array into K chunk descriptors, K
   replicated workers apply the site's function to their chunk on
   whatever device the substitution plan chose, and a gather sink
   reassembles the chunk results (map) or combines the partial folds
   (reduce). This retires the ad-hoc whole-array [run_gpu_map] hook
   path: every policy — including bytecode-only — now routes kernel
   sites through the same plan/actor/steady-state/fault machinery as
   graph templates.

   Cost parity with the legacy single-launch path: arguments cross the
   boundary once (device-side chunk slicing is free, like a kernel
   indexing into an already-resident buffer), chunk launches after the
   first are charged kernel time minus the launch overhead (command
   batching amortizes it), and the assembled result crosses back
   once. *)

(* A contiguous view of a device-resident array: the slicing a kernel
   launch does by offsetting into the buffer. *)
let slice_prim (v : V.t) ~offset ~len : V.t =
  match v with
  | V.Int_array a -> V.Int_array (Array.sub a offset len)
  | V.Float_array a -> V.Float_array (Array.sub a offset len)
  | V.Bool_array a -> V.Bool_array (Array.sub a offset len)
  | V.Array a -> V.Array (Array.sub a offset len)
  | V.Bits b -> V.Bits (Bits.Bitvec.sub b ~pos:offset ~len)
  | v -> fail "cannot slice a %s" (V.type_name v)

type mr_seg = Mr_bytecode | Mr_device of Artifact.t

let mr_seg_of_plan = function
  | [ Substitute.S_device (a, _) ] -> Mr_device a
  | _ -> Mr_bytecode

(* Ship an already-computed result across a boundary with the failure
   protocol. The values are host-visible either way (the crossing is
   marshaling accounting plus a round-trip through the wire codec), so
   on retry exhaustion the transfer is abandoned: quarantine the device
   and answer with the unshipped value rather than losing the run. *)
let mr_ship_home t ?boundary ~uid ~(device : Artifact.device) (v : V.t) : V.t =
  let rec attempt k =
    match ship_to_host ?boundary t v with
    | r -> r
    | exception Support.Fault.Device_fault info ->
      Metrics.add_device_fault t.metrics_;
      if k < t.max_retries then begin
        let backoff = t.retry_backoff_ns *. (2.0 ** float_of_int k) in
        Metrics.add_retry t.metrics_ ~backoff_ns:backoff;
        trace_fault_event
          ("retry:" ^ Artifact.device_name device)
          ~uid ~attempt:(k + 1)
          [ "backoff_ns", Trace.Float backoff ];
        attempt (k + 1)
      end
      else begin
        Store.quarantine t.store_ ~device ~reason:info.Support.Fault.f_reason;
        Metrics.add_resubstitution t.metrics_;
        trace_fault_event "resubstitute" ~uid ~attempt:k
          [
            "quarantined", Trace.Str (Artifact.device_name device);
            "reason", Trace.Str info.Support.Fault.f_reason;
          ];
        v
      end
  in
  attempt 0

(* The shared scatter -> workers -> gather actor graph. [run_chunk ci
   (off, len)] computes chunk [ci]'s result (carrying the full failure
   protocol); [collect ci v] lands it. Steady-state mode solves the
   lowered graph's balance equations — all-ones by construction — and
   runs the whole thing in one budgeted sweep. *)
let run_mr_actors t ~uid ~(bounds : (int * int) list)
    ~(run_chunk : int -> int * int -> V.t) ~(collect : int -> V.t -> unit) :
    unit =
  let k = List.length bounds in
  let cap = t.fifo_capacity in
  let desc_chs = List.init k (fun _ -> Actor.Channel.create ~capacity:cap) in
  let out_chs = List.init k (fun _ -> Actor.Channel.create ~capacity:cap) in
  let scatter =
    let remaining = ref (List.mapi (fun i b -> i, b) bounds) in
    let step () =
      match !remaining with
      | [] ->
        List.iter
          (fun (c : Actor.Channel.t) ->
            if not c.Actor.Channel.closed then Actor.Channel.close c)
          desc_chs;
        Actor.Done
      | (i, (off, len)) :: rest ->
        let ch = List.nth desc_chs i in
        if Actor.Channel.is_full ch then Actor.Blocked
        else begin
          Actor.Channel.push ch (V.Tuple [ V.Int i; V.Int off; V.Int len ]);
          remaining := rest;
          Actor.Progress
        end
    in
    Actor.make ~name:"scatter"
      ~ports:(List.mapi (fun i c -> Printf.sprintf "w%d" i, c) desc_chs)
      step
  in
  let worker i (inp : Actor.Channel.t) (out : Actor.Channel.t) =
    let pending = ref None in
    let step () =
      match !pending with
      | Some v ->
        if Actor.Channel.is_full out then Actor.Blocked
        else begin
          Actor.Channel.push out v;
          pending := None;
          Actor.Progress
        end
      | None -> (
        match Actor.Channel.pop_opt inp with
        | Some (V.Tuple [ V.Int ci; V.Int off; V.Int len ]) ->
          pending := Some (V.Tuple [ V.Int ci; run_chunk ci (off, len) ]);
          Actor.Progress
        | Some _ -> fail "lowered worker: malformed chunk descriptor"
        | None ->
          if Actor.Channel.drained inp then begin
            if not out.Actor.Channel.closed then Actor.Channel.close out;
            Actor.Done
          end
          else Actor.Blocked)
    in
    Actor.make
      ~name:(Printf.sprintf "mrw:%s#%d" uid i)
      ~ports:[ "in", inp; "out", out ]
      step
  in
  let workers =
    List.init k (fun i -> worker i (List.nth desc_chs i) (List.nth out_chs i))
  in
  let gather =
    let step () =
      let popped = ref false in
      List.iter
        (fun c ->
          if not !popped then
            match Actor.Channel.pop_opt c with
            | Some (V.Tuple [ V.Int ci; v ]) ->
              popped := true;
              collect ci v
            | Some _ -> fail "lowered gather: malformed chunk result"
            | None -> ())
        out_chs;
      if !popped then Actor.Progress
      else if List.for_all Actor.Channel.drained out_chs then Actor.Done
      else Actor.Blocked
    in
    Actor.make ~name:"gather"
      ~ports:(List.mapi (fun i c -> Printf.sprintf "w%d" i, c) out_chs)
      step
  in
  let ordered = (scatter :: workers) @ [ gather ] in
  (* Re-substitution changes a fault-injection run's firing pattern
     mid-flight, so those keep round-robin, as in [run_bound_graph]. *)
  let steady =
    t.schedule = Scheduler.Steady_state
    && (not (Support.Fault.enabled ()))
    &&
    match Analysis.Rates.solve (Analysis.Rates.scatter_gather ~workers:k) with
    | Ok _ -> true
    | Error _ -> false
  in
  let stats, ran_steady =
    if steady then
      (* all-ones repetition vector: one descriptor per worker per
         iteration; +1 slack absorbs the close/drain steps *)
      ( Scheduler.run_steady
          ((scatter, k + 1)
          :: (List.map (fun w -> w, 3) workers @ [ gather, k + 1 ])),
        true )
    else Scheduler.run ordered, false
  in
  Metrics.add_scheduler_run t.metrics_ ~steady:ran_steady
    ~fallback:(t.schedule = Scheduler.Steady_state && not ran_steady)
    ~rounds:stats.Scheduler.rounds ~steps:stats.Scheduler.steps
    ~blocked_steps:stats.Scheduler.blocked_steps

(* The per-chunk failure protocol: retry with rewind and backoff, then
   quarantine the chunk's device, drop its shipped argument copies and
   re-plan the worker — remaining chunks (and this one's retry) run on
   the next-best healthy device, bottoming out at bytecode, which
   cannot fault. [seg] is shared across chunks so one quarantine
   redirects the rest of the run. *)
let mr_chunk_with_recovery t ~uid ~n ~(worker : Ir.filter_info)
    ~(seg : mr_seg ref) ~(invalidate : Artifact.device -> unit)
    ~(receivers : I.v list) (compute : unit -> V.t) : V.t =
  let snaps = List.map snapshot_v receivers in
  let rewind () =
    List.iter2 (fun snap into -> restore_v ~snap ~into) snaps receivers
  in
  let rec attempt k =
    match compute () with
    | v -> v
    | exception Support.Fault.Device_fault info -> (
      Metrics.add_device_fault t.metrics_;
      rewind ();
      match !seg with
      | Mr_bytecode ->
        (* bytecode chunks never touch a device or a boundary *)
        raise (Support.Fault.Device_fault info)
      | Mr_device a ->
        let device = Artifact.device a in
        if k < t.max_retries then begin
          let backoff = t.retry_backoff_ns *. (2.0 ** float_of_int k) in
          Metrics.add_retry t.metrics_ ~backoff_ns:backoff;
          trace_fault_event
            ("retry:" ^ Artifact.device_name device)
            ~uid ~attempt:(k + 1)
            [ "backoff_ns", Trace.Float backoff ];
          if Trace.enabled () then
            Trace.end_span
              (Trace.begin_span ~cat:"backoff"
                 ~args:
                   [
                     "backoff_ns", Trace.Float backoff;
                     "attempt", Trace.Int (k + 1);
                   ]
                 ("backoff:" ^ Artifact.device_name device));
          attempt (k + 1)
        end
        else begin
          Store.quarantine t.store_ ~device
            ~reason:info.Support.Fault.f_reason;
          Metrics.add_resubstitution t.metrics_;
          trace_fault_event "resubstitute" ~uid ~attempt:k
            [
              "quarantined", Trace.Str (Artifact.device_name device);
              "reason", Trace.Str info.Support.Fault.f_reason;
            ];
          invalidate device;
          let plan = plan_for t ~n [ worker ] in
          (match plan with
          | [ Substitute.S_device (a', _) ] ->
            Metrics.add_substitution t.metrics_ uid (Artifact.device a')
          | _ -> ());
          seg := mr_seg_of_plan plan;
          attempt 0
        end)
  in
  attempt 0

let mr_record_plan t ~uid plan =
  t.last_plan_ <- Some (Substitute.describe_plan plan);
  List.iter
    (function
      | Substitute.S_device (a, fs) ->
        Metrics.add_substitution t.metrics_ uid (Artifact.device a);
        if Trace.enabled () then
          trace_substitution t ~uid ~filters:(List.length fs)
            (Some (Artifact.device a))
      | Substitute.S_bytecode fs ->
        if Trace.enabled () then
          trace_substitution t ~uid ~filters:(List.length fs) None)
    plan

let mr_span ~uid ~n ~chunks ~plan ~steady f =
  Trace.with_span ~cat:"runtime"
    ~args:
      [
        "elements", Trace.Int n;
        "plan", Trace.Str (Substitute.describe_plan plan);
        "chunks", Trace.Int chunks;
        ( "schedule",
          Trace.Str
            (Scheduler.mode_name
               (if steady then Scheduler.Steady_state
                else Scheduler.Round_robin)) );
      ]
    ("mr:" ^ uid) f

let mr_steady t = t.schedule = Scheduler.Steady_state && not (Support.Fault.enabled ())

(* One lowered map run over a non-empty stream. *)
let run_lowered_map_n t (lw : Lmr.lowered) (site : Ir.map_site)
    (pairs : (I.v * bool) list) (n : int) : I.v =
  let uid = lw.Lmr.lw_uid in
  let worker = lw.Lmr.lw_worker in
  let bounds =
    Lmr.split_bounds ~n
      ~chunks:(Lmr.chunks_for ?override:t.map_chunks ~n lw.Lmr.lw_kind)
  in
  let k = List.length bounds in
  let plan = plan_for t ~n [ worker ] in
  mr_record_plan t ~uid plan;
  Metrics.add_mr_run t.metrics_ ~chunks:k;
  let seg = ref (mr_seg_of_plan plan) in
  (* Device-resident argument copies, shipped once on first use. GPU
     launches ship every argument over the accelerator boundary;
     native ones ship only the mapped arrays over JNI — receivers and
     scalars stay host side, as in [native_batch]. *)
  let gpu_args = ref None in
  let native_args = ref None in
  let gpu_launched = ref false in
  let used_gpu = ref false and used_native = ref false in
  let invalidate = function
    | Artifact.Gpu ->
      gpu_args := None;
      gpu_launched := false
    | Artifact.Native -> native_args := None
    | _ -> ()
  in
  let gpu_ctx () =
    match !gpu_args with
    | Some d -> d
    | None ->
      let d = List.map (fun (a, _) -> ship_to_device t (I.prim_exn a)) pairs in
      gpu_args := Some d;
      d
  in
  let native_ctx () =
    match !native_args with
    | Some d -> d
    | None ->
      let nb = Metrics.native_boundary t.metrics_ in
      let d =
        List.map
          (fun (a, mapped) ->
            if mapped then `Arr (ship_to_device ~boundary:nb t (I.prim_exn a))
            else `Host a)
          pairs
      in
      native_args := Some d;
      d
  in
  let bc_chunk (off, len) =
    Trace.with_span ~cat:"vm" ("bc:" ^ uid) (fun () ->
        let out = I.new_array site.Ir.map_elem_ty len in
        for j = 0 to len - 1 do
          let elt_args =
            List.map
              (fun (a, mapped) ->
                if mapped then I.Prim (I.array_get (I.prim_exn a) (off + j))
                else a)
              pairs
          in
          let r = Bytecode.Vm.run t.unit_ lw.Lmr.lw_fn elt_args in
          Metrics.add_vm_instructions t.metrics_ r.Bytecode.Vm.executed;
          I.array_set out j (I.prim_exn r.Bytecode.Vm.value)
        done;
        I.freeze out)
  in
  let gpu_chunk (off, len) =
    with_launch_span t ~elements:len ("gpu:" ^ uid) (fun () ->
        let dev = gpu_ctx () in
        let chunk_args =
          List.map2
            (fun d (_, mapped) ->
              if mapped then slice_prim d ~offset:off ~len else d)
            dev pairs
        in
        let result, timing =
          Gpu.Simt.run_map ~device:t.gpu_device
            ~model_divergence:t.model_divergence (program t) site chunk_args
        in
        let overhead = t.gpu_device.Gpu.Device.launch_overhead_ns in
        let ns =
          if !gpu_launched then
            Float.max 0.0 (timing.Gpu.Simt.kernel_ns -. overhead)
          else timing.Gpu.Simt.kernel_ns
        in
        gpu_launched := true;
        used_gpu := true;
        Metrics.add_gpu_kernel t.metrics_ ~ns;
        result)
  in
  let native_chunk (off, len) =
    Support.Fault.check ~device:"native" ~segment:uid;
    with_launch_span t ~elements:len ("native:" ^ uid) (fun () ->
        let shipped = native_ctx () in
        let out = I.new_array site.Ir.map_elem_ty len in
        for j = 0 to len - 1 do
          let elt_args =
            List.map
              (function
                | `Arr d -> I.Prim (I.array_get d (off + j))
                | `Host a -> a)
              shipped
          in
          let r = Bytecode.Vm.run t.unit_ lw.Lmr.lw_fn elt_args in
          Metrics.add_native_instructions t.metrics_ r.Bytecode.Vm.executed;
          I.array_set out j (I.prim_exn r.Bytecode.Vm.value)
        done;
        used_native := true;
        I.freeze out)
  in
  let receivers =
    List.filter_map
      (fun (a, _) -> match a with I.Obj _ -> Some a | _ -> None)
      pairs
  in
  let run_chunk _ci bound =
    mr_chunk_with_recovery t ~uid ~n ~worker ~seg ~invalidate ~receivers
      (fun () ->
        match !seg with
        | Mr_bytecode -> bc_chunk bound
        | Mr_device (Artifact.Gpu_kernel _) -> gpu_chunk bound
        | Mr_device (Artifact.Native_binary _) -> native_chunk bound
        | Mr_device (Artifact.Fpga_module _) ->
          fail "lowered map %s: no FPGA execution path" uid)
  in
  let staging = I.new_array site.Ir.map_elem_ty n in
  let bound_arr = Array.of_list bounds in
  let collect ci cv =
    let off, len = bound_arr.(ci) in
    for j = 0 to len - 1 do
      I.array_set staging (off + j) (I.array_get cv j)
    done
  in
  mr_span ~uid ~n ~chunks:k ~plan ~steady:(mr_steady t) (fun () ->
      run_mr_actors t ~uid ~bounds ~run_chunk ~collect;
      let result = I.freeze staging in
      let result =
        if !used_gpu then mr_ship_home t ~uid ~device:Artifact.Gpu result
        else if !used_native then
          mr_ship_home t
            ~boundary:(Metrics.native_boundary t.metrics_)
            ~uid ~device:Artifact.Native result
        else result
      in
      I.Prim result)

(* The lowered-map hook: validate exactly what [Vm.eval_map] validates
   and answer [None] on any mismatch, so the VM raises its canonical
   diagnostics ("map needs at least one array argument", "mapped
   arrays have different lengths"). *)
let run_lowered_map t (lw : Lmr.lowered) (site : Ir.map_site)
    (args : I.v list) : I.v option =
  let flags = List.map snd site.Ir.map_args in
  let validated =
    match List.combine args flags with
    | exception Invalid_argument _ -> None
    | pairs -> (
      try
        match
          List.filter_map
            (fun (a, mapped) ->
              if mapped then Some (I.array_length (I.prim_exn a)) else None)
            pairs
        with
        | [] -> None
        | n :: rest when List.for_all (Int.equal n) rest -> Some (pairs, n)
        | _ -> None
      with _ -> None)
  in
  match validated with
  | None -> None
  | Some (_, 0) ->
    (* [eval_map]'s empty-stream result: a frozen empty array *)
    Some (I.Prim (I.freeze (I.new_array site.Ir.map_elem_ty 0)))
  | Some (pairs, n) -> Some (run_lowered_map_n t lw site pairs n)

(* Whether the algebraic analysis proves the combiner associative and
   commutative — the licence for chunked tree combining. Memoized per
   function key: the verdict depends on the combiner alone, and
   [Exec.create] shares one program across every run. *)
let combiner_assoc t (fn_key : string) : bool =
  match Hashtbl.find_opt t.assoc_memo_ fn_key with
  | Some b -> b
  | None ->
    let b = Analysis.Algebra.is_assoc_comm (program t) fn_key in
    Hashtbl.add t.assoc_memo_ fn_key b;
    b

(* One lowered reduce run over a non-empty array. Chunks fold
   left-to-right within themselves (the GPU reduce folds values in
   array order precisely so this stays bit-identical); partials are
   combined on the host pair-wise as a tree. The default is one chunk
   unless the algebraic analysis proves the combiner associative and
   commutative — then regrouping is bit-identical by the reassociation
   contract (docs/ANALYSIS.md) and the reduce chunks like a map;
   [reduce_chunks] still forces a count either way. *)
let run_lowered_reduce_n t (lw : Lmr.lowered) (site : Ir.reduce_site)
    (host : V.t) (n : int) : I.v =
  let uid = lw.Lmr.lw_uid in
  let worker = lw.Lmr.lw_worker in
  let bounds =
    Lmr.split_bounds ~n
      ~chunks:
        (Lmr.chunks_for ?override:t.reduce_chunks
           ~assoc:(combiner_assoc t lw.Lmr.lw_fn)
           ~n lw.Lmr.lw_kind)
  in
  let k = List.length bounds in
  let plan = plan_for t ~n [ worker ] in
  mr_record_plan t ~uid plan;
  Metrics.add_mr_run t.metrics_ ~chunks:k;
  let seg = ref (mr_seg_of_plan plan) in
  let gpu_arg = ref None in
  let native_arg = ref None in
  let gpu_launched = ref false in
  (* which boundary each partial must cross to reach the host combine *)
  let partial_home = Array.make k `Host in
  let invalidate = function
    | Artifact.Gpu ->
      gpu_arg := None;
      gpu_launched := false
    | Artifact.Native -> native_arg := None
    | _ -> ()
  in
  let gpu_ctx () =
    match !gpu_arg with
    | Some d -> d
    | None ->
      let d = ship_to_device t host in
      gpu_arg := Some d;
      d
  in
  let native_ctx () =
    match !native_arg with
    | Some d -> d
    | None ->
      let nb = Metrics.native_boundary t.metrics_ in
      let d = ship_to_device ~boundary:nb t host in
      native_arg := Some d;
      d
  in
  let vm_fold ~account arr (off, len) =
    let acc = ref (I.Prim (I.array_get arr off)) in
    for j = 1 to len - 1 do
      let r =
        Bytecode.Vm.run t.unit_ lw.Lmr.lw_fn
          [ !acc; I.Prim (I.array_get arr (off + j)) ]
      in
      account r.Bytecode.Vm.executed;
      acc := r.Bytecode.Vm.value
    done;
    I.prim_exn !acc
  in
  let bc_chunk bound =
    Trace.with_span ~cat:"vm" ("bc:" ^ uid) (fun () ->
        vm_fold ~account:(Metrics.add_vm_instructions t.metrics_) host bound)
  in
  let gpu_chunk ci (off, len) =
    with_launch_span t ~elements:len ("gpu:" ^ uid) (fun () ->
        let dev = slice_prim (gpu_ctx ()) ~offset:off ~len in
        let result, timing =
          Gpu.Simt.run_reduce ~device:t.gpu_device
            ~model_divergence:t.model_divergence (program t) site dev
        in
        let overhead = t.gpu_device.Gpu.Device.launch_overhead_ns in
        let ns =
          if !gpu_launched then
            Float.max 0.0 (timing.Gpu.Simt.kernel_ns -. overhead)
          else timing.Gpu.Simt.kernel_ns
        in
        gpu_launched := true;
        partial_home.(ci) <- `Gpu;
        Metrics.add_gpu_kernel t.metrics_ ~ns;
        result)
  in
  let native_chunk ci bound =
    Support.Fault.check ~device:"native" ~segment:uid;
    with_launch_span t ~elements:(snd bound) ("native:" ^ uid) (fun () ->
        let r =
          vm_fold
            ~account:(Metrics.add_native_instructions t.metrics_)
            (native_ctx ()) bound
        in
        partial_home.(ci) <- `Native;
        r)
  in
  let run_chunk ci bound =
    mr_chunk_with_recovery t ~uid ~n ~worker ~seg ~invalidate ~receivers:[]
      (fun () ->
        partial_home.(ci) <- `Host;
        match !seg with
        | Mr_bytecode -> bc_chunk bound
        | Mr_device (Artifact.Gpu_kernel _) -> gpu_chunk ci bound
        | Mr_device (Artifact.Native_binary _) -> native_chunk ci bound
        | Mr_device (Artifact.Fpga_module _) ->
          fail "lowered reduce %s: no FPGA execution path" uid)
  in
  let partials = Array.make k None in
  let collect ci v = partials.(ci) <- Some v in
  mr_span ~uid ~n ~chunks:k ~plan ~steady:(mr_steady t) (fun () ->
      run_mr_actors t ~uid ~bounds ~run_chunk ~collect;
      (* Device partials come home batched: one packed readback per
         boundary rather than one crossing per chunk, the same
         single-transfer shape as the map path's gathered result — at
         K > 1 a per-partial crossing would charge K boundary
         latencies where the legacy whole-array reduce pays one. *)
      let resolved = Array.make k None in
      let ship_batch ?boundary ~(device : Artifact.device) sel =
        let group =
          List.filter_map
            (fun ci ->
              match partials.(ci) with
              | Some v when partial_home.(ci) = sel -> Some (ci, v)
              | _ -> None)
            (List.init k Fun.id)
        in
        match group with
        | [] -> ()
        | [ (ci, v) ] ->
          resolved.(ci) <- Some (mr_ship_home t ?boundary ~uid ~device v)
        | group ->
          let buf = I.new_array site.Ir.red_elem_ty (List.length group) in
          List.iteri (fun j (_, v) -> I.array_set buf j v) group;
          let shipped = mr_ship_home t ?boundary ~uid ~device (I.freeze buf) in
          List.iteri
            (fun j (ci, _) -> resolved.(ci) <- Some (I.array_get shipped j))
            group
      in
      Array.iteri
        (fun ci p ->
          match p, partial_home.(ci) with
          | Some v, `Host -> resolved.(ci) <- Some v
          | _ -> ())
        partials;
      ship_batch ~device:Artifact.Gpu `Gpu;
      ship_batch
        ~boundary:(Metrics.native_boundary t.metrics_)
        ~device:Artifact.Native `Native;
      let part ci =
        match resolved.(ci) with
        | Some v -> v
        | None -> fail "lowered reduce %s: chunk %d produced no partial" uid ci
      in
      (* Pair-wise tree combine of the per-chunk partials, the same
         shape a device-side reduction uses. For a proven-associative
         combiner this is bit-identical to the sequential fold; a
         forced [reduce_chunks] opted into reassociation already. *)
      let combine a b =
        let r =
          Trace.with_span ~cat:"vm" ("bc:" ^ uid) (fun () ->
              Bytecode.Vm.run t.unit_ lw.Lmr.lw_fn [ a; b ])
        in
        Metrics.add_vm_instructions t.metrics_ r.Bytecode.Vm.executed;
        r.Bytecode.Vm.value
      in
      let rec pair_round = function
        | a :: b :: rest -> combine a b :: pair_round rest
        | tail -> tail
      in
      let rec tree = function
        | [] -> fail "lowered reduce %s: no partials" uid
        | [ v ] -> v
        | vs -> tree (pair_round vs)
      in
      tree (List.init k (fun ci -> I.Prim (part ci))))

let run_lowered_reduce t (lw : Lmr.lowered) (site : Ir.reduce_site)
    (arg : I.v) : I.v option =
  match (try Some (I.prim_exn arg, I.array_length (I.prim_exn arg)) with _ -> None)
  with
  | None | Some (_, 0) ->
    (* malformed or empty: the VM raises its canonical diagnostics
       ("reduce of an empty array") *)
    None
  | Some (host, n) -> Some (run_lowered_reduce_n t lw site host n)

(* --- VM hooks ---------------------------------------------------------- *)

(* The hook-path version of the failure protocol: a faulting GPU
   map/reduce launch is retried with backoff, and on exhaustion the
   device is quarantined and the hook answers [None] — the VM then
   interprets the site inline, which is exactly the bytecode
   fallback. *)
let hook_with_recovery t ~uid (f : unit -> I.v) : I.v option =
  let rec attempt k =
    match f () with
    | r -> Some r
    | exception Support.Fault.Device_fault info ->
      Metrics.add_device_fault t.metrics_;
      if k < t.max_retries then begin
        let backoff = t.retry_backoff_ns *. (2.0 ** float_of_int k) in
        Metrics.add_retry t.metrics_ ~backoff_ns:backoff;
        trace_fault_event "retry:gpu" ~uid ~attempt:(k + 1)
          [ "backoff_ns", Trace.Float backoff ];
        if Trace.enabled () then
          Trace.end_span
            (Trace.begin_span ~cat:"backoff"
               ~args:
                 [
                   "backoff_ns", Trace.Float backoff;
                   "attempt", Trace.Int (k + 1);
                 ]
               "backoff:gpu");
        attempt (k + 1)
      end
      else begin
        Store.quarantine t.store_ ~device:Artifact.Gpu
          ~reason:info.Support.Fault.f_reason;
        Metrics.add_resubstitution t.metrics_;
        trace_fault_event "resubstitute" ~uid ~attempt:k
          [
            "quarantined", Trace.Str "gpu";
            "reason", Trace.Str info.Support.Fault.f_reason;
          ];
        None
      end
  in
  attempt 0

let hooks t : Bytecode.Vm.hooks =
  (* The legacy direct-dispatch path (--no-lower-mapreduce): a
     whole-array GPU launch when the policy allows it, inline VM
     interpretation otherwise. Kept as the differential baseline the
     lowered path is proven bit-identical against. *)
  let legacy_map desc args =
    if not (gpu_allowed t) then None
    else
      let uid = desc.Bytecode.Insn.bm_uid in
      match Store.find_on t.store_ ~uid ~device:Artifact.Gpu with
      | Some (Artifact.Gpu_kernel { ga_kind = Artifact.G_map site; _ }) ->
        hook_with_recovery t ~uid (fun () -> run_gpu_map t site args)
      | Some _ | None -> None
  in
  let legacy_reduce desc arg =
    if not (gpu_allowed t) then None
    else
      let uid = desc.Bytecode.Insn.br_uid in
      match Store.find_on t.store_ ~uid ~device:Artifact.Gpu with
      | Some (Artifact.Gpu_kernel { ga_kind = Artifact.G_reduce site; _ }) ->
        hook_with_recovery t ~uid (fun () -> run_gpu_reduce t site arg)
      | Some _ | None -> None
  in
  {
    Bytecode.Vm.on_map =
      (fun desc args ->
        let uid = desc.Bytecode.Insn.bm_uid in
        match
          if t.lower_mapreduce then Ir.String_map.find_opt uid t.mr_sites
          else None
        with
        | Some ({ Lmr.lw_kind = Lmr.K_map site; _ } as lw) ->
          run_lowered_map t lw site args
        | Some _ | None -> legacy_map desc args);
    on_reduce =
      (fun desc arg ->
        let uid = desc.Bytecode.Insn.br_uid in
        match
          if t.lower_mapreduce then Ir.String_map.find_opt uid t.mr_sites
          else None
        with
        | Some ({ Lmr.lw_kind = Lmr.K_reduce site; _ } as lw) ->
          run_lowered_reduce t lw site arg
        | Some _ | None -> legacy_reduce desc arg);
    on_run_graph =
      Some
        (fun template ops ~blocking ->
          (* start() and finish() both run the graph to completion in
             this cooperative runtime; see DESIGN.md section 5. *)
          ignore blocking;
          run_bound_graph t (bound_graph_of template ops);
          true);
  }

(* The whole entry-point invocation runs under one `run` root span:
   the report layer anchors critical-path and attribution analysis on
   these roots (self-time is host bytecode interpretation). *)
let call t key args =
  Trace.with_span ~cat:"run" ("run:" ^ key) (fun () ->
      let r = Bytecode.Vm.run ~hooks:(hooks t) t.unit_ key args in
      Metrics.add_vm_instructions t.metrics_ r.Bytecode.Vm.executed;
      r.Bytecode.Vm.value)

(* --- calibration entry (used by Placement) ----------------------------- *)

let artifact_chain (a : Artifact.t) =
  match a with
  | Artifact.Gpu_kernel { ga_kind = Artifact.G_filter_chain fs; _ } -> Some fs
  | Artifact.Gpu_kernel _ -> None
  | Artifact.Fpga_module f -> Some f.Artifact.fa_filters
  | Artifact.Native_binary n -> Some n.Artifact.na_filters

(* One raw device launch over a synthetic batch, full boundary path
   included — the microbenchmark the placement calibrator wraps in
   [modeled_ns] deltas. Static chains run receiverless; stateful
   chains pass fabricated receiver objects via [receivers] (one
   [option] per filter, in chain order), built by the calibrator from
   the IR's class declarations. *)
let calibrate_batch ?receivers t (artifact : Artifact.t) (xs : V.t list) :
    V.t list =
  match artifact_chain artifact with
  | None ->
    fail "calibrate_batch: artifact %s is not a filter chain"
      (Artifact.uid artifact)
  | Some fs ->
    let pairs =
      match receivers with
      | Some rs when List.length rs = List.length fs -> List.combine fs rs
      | Some _ ->
        fail "calibrate_batch: receiver list misaligned with chain %s"
          (Artifact.uid artifact)
      | None -> List.map (fun f -> f, None) fs
    in
    batch_of_artifact t artifact pairs xs
