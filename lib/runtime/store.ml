(* The artifact store.

   "the unique identifiers of tasks, which are stored in the task
   runtime objects, can be looked up efficiently in the artifact store
   populated by the backends" (paper section 4.2). *)

type t = {
  by_uid : (string, Artifact.t list) Hashtbl.t;
  fusions : (string, Lime_ir.Ir.filter_info) Hashtbl.t;
      (* plain chain uid ("a+b+c") -> the synthetic fused filter the
         compiler registered for that run; consulted by [Substitute]
         so even all-bytecode plans execute a fused run as one segment *)
  mutable manifest : Artifact.manifest;
  mutable quarantined : (Artifact.device * string) list;
      (* devices pulled out of service at runtime after a fault, with
         the reason; lookups treat their artifacts as absent so
         re-planning never picks them again *)
  mutable resident : (Artifact.device * string list) list;
      (* per device, the segment uids whose inputs/code were last
         staged there (most recent first, bounded LRU) — the transfer
         state a data-aware scheduler weighs against raw makespan *)
}

(* Residency is scheduling state, not correctness state: it only
   biases placement, so a small LRU per device is enough to capture
   "this job's segments are already over the wire". *)
let residency_capacity = 32

let create () =
  {
    by_uid = Hashtbl.create 64;
    fusions = Hashtbl.create 8;
    manifest = { entries = []; exclusions = [] };
    quarantined = [];
    resident = [];
  }

let add_fusion t ~chain fused = Hashtbl.replace t.fusions chain fused
let find_fusion t ~chain = Hashtbl.find_opt t.fusions chain
let fusion_count t = Hashtbl.length t.fusions

let add t artifact =
  let uid = Artifact.uid artifact in
  let existing = Option.value (Hashtbl.find_opt t.by_uid uid) ~default:[] in
  Hashtbl.replace t.by_uid uid (artifact :: existing);
  t.manifest <-
    {
      t.manifest with
      entries = t.manifest.entries @ [ Artifact.manifest_entry_of artifact ];
    }

let record_exclusion t ~uid ~device ~reason =
  t.manifest <-
    {
      t.manifest with
      exclusions =
        t.manifest.exclusions
        @ [ { Artifact.ex_uid = uid; ex_device = device; ex_reason = reason } ];
    }

let residents t ~device =
  Option.value (List.assoc_opt device t.resident) ~default:[]

let note_resident t ~device ~uid =
  let kept =
    List.filter (fun u -> u <> uid) (residents t ~device)
  in
  let entry =
    uid
    ::
    (if List.length kept >= residency_capacity then
       List.filteri (fun i _ -> i < residency_capacity - 1) kept
     else kept)
  in
  t.resident <- (device, entry) :: List.remove_assoc device t.resident

let is_resident t ~device ~uid = List.mem uid (residents t ~device)

let evict_residents t ~device =
  t.resident <- List.remove_assoc device t.resident

let quarantine t ~device ~reason =
  if not (List.mem_assoc device t.quarantined) then begin
    t.quarantined <- (device, reason) :: t.quarantined;
    (* a quarantined device's staged state is gone with it: nothing
       should score a residency bonus on a device plans cannot pick *)
    evict_residents t ~device
  end

let is_quarantined t ~device = List.mem_assoc device t.quarantined
let quarantined t = List.rev t.quarantined
let clear_quarantine t = t.quarantined <- []

(* Lookup order is part of the runtime's determinism contract:
   [Substitute.plan] breaks ties between artifacts that cover chains
   of equal length on equally-preferred devices by taking the first
   match here, so the result must not depend on store insertion
   order. Sort by (uid, device name): a stable, content-derived key. *)
let artifact_order a b =
  match String.compare (Artifact.uid a) (Artifact.uid b) with
  | 0 ->
    String.compare
      (Artifact.device_name (Artifact.device a))
      (Artifact.device_name (Artifact.device b))
  | c -> c

let find t ~uid =
  List.filter
    (fun a -> not (is_quarantined t ~device:(Artifact.device a)))
    (Option.value (Hashtbl.find_opt t.by_uid uid) ~default:[])
  |> List.stable_sort artifact_order

let find_on t ~uid ~device =
  List.find_opt (fun a -> Artifact.device a = device) (find t ~uid)

let manifest t = t.manifest

let artifact_count t =
  Hashtbl.fold (fun _ l acc -> acc + List.length l) t.by_uid 0
