(** Task substitution (paper section 4.2).

    "At present, the runtime algorithm for doing this substitution is
    primitive: it prefers a larger substitution to a smaller one. It
    also favors GPU and FPGA artifacts to bytecode although that choice
    can be manually directed as well." All of those behaviours are
    policies here, together with the ablation policies and the
    section-7 adaptive extension. *)

module Ir = Lime_ir.Ir

type policy =
  | Bytecode_only  (** manual direction: never substitute *)
  | Prefer_accelerators
      (** the paper's default: largest substitution first; GPU, then
          FPGA, then native shared libraries *)
  | Prefer_devices of Artifact.device list
      (** manual direction of the device preference order *)
  | Smallest_substitution  (** ablation A1: single-filter substitutions *)
  | Adaptive
      (** paper section 7 (future work): pick the placement with the
          lowest estimated cost for the observed stream length *)

val device_order : policy -> Artifact.device list

(** A maximal run of consecutive filters with one chosen
    implementation. *)
type segment =
  | S_bytecode of Ir.filter_info list
  | S_device of Artifact.t * Ir.filter_info list

val segment_filters : segment -> Ir.filter_info list

val plan :
  ?fuse:bool -> policy -> Store.t -> Ir.filter_info list -> segment list
(** Choose implementations for a task graph's filter chain, greedy
    left-to-right. Non-relocatable filters always stay on bytecode.

    Deterministic: longer chains beat shorter ones, devices follow the
    policy's preference order, and equal-length chains on
    equally-preferred devices tie-break by artifact UID (via
    {!Store.find}'s sorted order), never by store insertion order.

    With [fuse] (the default) every device lookup tries the fused
    artifact (uid ["fuse:" ^ chain uid]) before the per-stage one, and
    bytecode runs are rewritten through the store's fusion registry so
    a fused run executes as one segment even on the VM. [~fuse:false]
    is the unfuse path: fault recovery re-plans a faulted fused
    segment per stage with it. *)

val fuse_bytecode : Store.t -> Ir.filter_info list -> Ir.filter_info list
(** Replace every registered fusible run inside a bytecode run with
    its synthetic fused filter (exposed for tests). *)

val plan_adaptive :
  ?fuse:bool ->
  cost:(Artifact.t option -> Ir.filter_info list -> float) ->
  Store.t ->
  Ir.filter_info list ->
  segment list
(** Adaptive planning: per maximal relocatable run, compare the
    estimated cost of each whole-run device artifact — fused
    candidates first when [fuse] — against bytecode ([cost None]) and
    keep the cheapest. *)

val describe_plan : segment list -> string
(** e.g. ["bytecode(1) | gpu(2)"]; fused segments read
    ["fpga(3 stages fused)"]. *)
