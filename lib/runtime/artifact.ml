module Ir = Lime_ir.Ir

(* Artifacts and manifests.

   "The result of a compilation with Liquid Metal is a collection of
   artifacts for different architectures, each labeled with the
   particular computational node that it implements" (paper section 1),
   and "the frontend and backend compilers cooperate to produce a
   manifest describing each generated artifact and labeling it with a
   unique task identifier" (section 3).

   Bytecode needs no artifact entry: the CPU compiler always compiles
   the entire program, so every task implicitly has a bytecode
   implementation. *)

type device = Cpu | Native | Gpu | Fpga

let device_name = function
  | Cpu -> "cpu"
  | Native -> "native"
  | Gpu -> "gpu"
  | Fpga -> "fpga"

type gpu_kind =
  | G_map of Ir.map_site
  | G_reduce of Ir.reduce_site
  | G_filter_chain of Ir.filter_info list
      (** a fused elementwise kernel over consecutive pure filters *)

type gpu_artifact = {
  ga_uid : string;
  ga_kind : gpu_kind;
  ga_opencl : string;  (** generated OpenCL C source *)
}

type fpga_artifact = {
  fa_uid : string;
  fa_filters : Ir.filter_info list;
  fa_verilog : string;  (** generated Verilog source *)
}

type native_artifact = {
  na_uid : string;
  na_filters : Ir.filter_info list;
  na_c : string;  (** generated C source of the shared library *)
}

type t =
  | Gpu_kernel of gpu_artifact
  | Fpga_module of fpga_artifact
  | Native_binary of native_artifact

let uid = function
  | Gpu_kernel g -> g.ga_uid
  | Fpga_module f -> f.fa_uid
  | Native_binary n -> n.na_uid

let device = function
  | Gpu_kernel _ -> Gpu
  | Fpga_module _ -> Fpga
  | Native_binary _ -> Native

(* The UID of a substitution covering a consecutive chain of filters:
   the concatenation of the member task UIDs. A single filter's chain
   UID is its own UID. *)
let chain_uid (filters : Ir.filter_info list) =
  String.concat "+" (List.map (fun (f : Ir.filter_info) -> f.uid) filters)

(* Fused-segment naming (see [Lime_ir.Fuse]): the fused artifact uid
   is ["fuse:" ^ chain_uid members], so the pre-fusion segment names
   are recoverable from the artifact name alone — fault-injection
   specs keep matching, and unfuse-on-fault knows what to re-plan. *)
let fused_prefix = Lime_ir.Fuse.fused_prefix
let fused_uid = Lime_ir.Fuse.fused_uid
let is_fused_uid = Lime_ir.Fuse.is_fused_uid
let fused_members = Lime_ir.Fuse.member_uids

let describe = function
  | Gpu_kernel { ga_uid; ga_kind; _ } ->
    let kind =
      match ga_kind with
      | G_map m -> "map kernel for " ^ m.Ir.map_fn
      | G_reduce r -> "reduce kernel for " ^ r.Ir.red_fn
      | G_filter_chain fs ->
        Printf.sprintf "fused filter kernel (%d stage(s))" (List.length fs)
    in
    Printf.sprintf "[gpu] %s: %s" ga_uid kind
  | Fpga_module { fa_uid; fa_filters; _ } ->
    Printf.sprintf "[fpga] %s: pipeline (%d stage(s))" fa_uid
      (List.length fa_filters)
  | Native_binary { na_uid; na_filters; _ } ->
    Printf.sprintf "[native] %s: shared library (%d stage(s))" na_uid
      (List.length na_filters)

type manifest_entry = { me_uid : string; me_device : device; me_desc : string }

type exclusion = {
  ex_uid : string;  (** task or kernel-site UID *)
  ex_device : device;
  ex_reason : string;
}

(* The manifest also records why a backend excluded a task — section 3:
   "a task containing language constructs that are not suitable for
   the device is excluded from further compilation by that backend". *)
type manifest = {
  entries : manifest_entry list;
  exclusions : exclusion list;
}

let manifest_entry_of artifact =
  {
    me_uid = uid artifact;
    me_device = device artifact;
    me_desc = describe artifact;
  }

let pp_manifest ppf (m : manifest) =
  Format.fprintf ppf "artifacts:@.";
  List.iter (fun e -> Format.fprintf ppf "  %s@." e.me_desc) m.entries;
  if m.exclusions <> [] then begin
    Format.fprintf ppf "exclusions:@.";
    List.iter
      (fun x ->
        Format.fprintf ppf "  [%s] %s: %s@." (device_name x.ex_device) x.ex_uid
          x.ex_reason)
      m.exclusions
  end
