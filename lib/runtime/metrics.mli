(** Execution metrics and the cost models.

    Everything the evaluation needs: VM and native instruction counts,
    device kernel times, marshaling traffic on both boundaries
    (PCIe-class for accelerators, JNI-only for native shared
    libraries), and the substitutions that were performed. *)

type snapshot = {
  vm_instructions : int;
  native_instructions : int;
      (** instructions executed inside native (compiled C) segments *)
  native_ns : float;  (** those instructions under the native cost model *)
  gpu_kernels : int;
  gpu_kernel_ns : float;
  fpga_runs : int;
  fpga_cycles : int;
  fpga_ns : float;
  marshal : Wire.Boundary.stats;  (** the accelerator (PCIe-class) boundary *)
  marshal_native : Wire.Boundary.stats;  (** the JNI-only boundary *)
  substitutions : (string * Artifact.device) list;
      (** chain uid, chosen device — in execution order *)
  device_faults : int;  (** faults observed (injected or real) *)
  retries : int;  (** launch retries after a fault *)
  resubstitutions : int;  (** dynamic re-plans after retry exhaustion *)
  replans : int;
      (** online re-plans: a device underperformed its cost model by
          more than the configured factor and the segment was
          re-substituted mid-run *)
  backoff_ns : float;  (** modeled time spent backing off before retries *)
  sched_runs : int;  (** task-graph scheduler invocations *)
  sched_steady : int;  (** of which ran the steady-state schedule *)
  sched_fallbacks : int;
      (** steady-state requested but fell back to round-robin *)
  sched_rounds : int;  (** cumulative scheduling rounds *)
  sched_steps : int;  (** cumulative actor steps *)
  sched_blocked_steps : int;  (** cumulative blocked steps *)
  sched_cache_hits : int;
      (** steady-state schedules served from the per-session
          (template, plan) cache instead of re-solving the rate graph *)
  mr_runs : int;
      (** map/reduce sites executed through the lowered
          scatter/worker/gather task graph *)
  mr_chunks : int;  (** worker chunk launches across those runs *)
  fused_launches : int;
      (** device launches of a fused (cross-filter) segment *)
  unfuses : int;
      (** faulted fused segments re-planned per stage (unfuse path) *)
}

type t

val create : ?boundary:Wire.Boundary.t -> unit -> t
val add_vm_instructions : t -> int -> unit
val add_native_instructions : t -> int -> unit
val add_gpu_kernel : t -> ns:float -> unit
val add_fpga_run : t -> cycles:int -> ns:float -> unit
val add_substitution : t -> string -> Artifact.device -> unit
val add_device_fault : t -> unit

val add_retry : t -> backoff_ns:float -> unit
(** One retry, accumulating the modeled backoff delay before it. *)

val add_resubstitution : t -> unit

val add_replan : t -> unit
(** One online re-plan (measured service time exceeded the model's
    prediction by more than the replan factor). *)

val add_sched_cache_hit : t -> unit
(** One steady-state schedule served from the session cache. *)

val add_fused_launch : t -> unit
(** One device launch of a fused (cross-filter) segment. *)

val add_unfuse : t -> unit
(** One faulted fused segment re-planned per stage (the unfuse path of
    the failure protocol, see [docs/FUSION.md]). *)

val add_mr_run : t -> chunks:int -> unit
(** One map/reduce site executed through the lowered
    scatter/worker/gather graph, with its chunk count. *)

(** One task-graph scheduler invocation: which mode actually ran
    ([steady]), whether a requested steady-state schedule fell back to
    round-robin ([fallback]), and the run's {!Scheduler.stats}. *)
val add_scheduler_run :
  t ->
  steady:bool ->
  fallback:bool ->
  rounds:int ->
  steps:int ->
  blocked_steps:int ->
  unit
val boundary : t -> Wire.Boundary.t
val native_boundary : t -> Wire.Boundary.t
val snapshot : t -> snapshot
val reset : t -> unit

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]: the activity between two snapshots of the
    same accumulator — how a multi-job engine attributes metrics to
    one job without resetting shared state. Counters subtract; the
    substitution list keeps the entries performed after [earlier]. *)

(** One declared metric: the single source the pretty-printer, JSON
    export and registry export are all derived from, so the renderings
    cannot drift apart. *)
type field = {
  fd_name : string;
  fd_labels : (string * string) list;  (** e.g. [("boundary", "pcie")] *)
  fd_help : string;
  fd_count : bool;  (** integral count vs modeled-nanosecond total *)
  fd_get : snapshot -> float;
}

val fields : field list
(** Every scalar metric in presentation order (the substitution list is
    carried separately — it is an ordered list, not a scalar). *)

val pp : Format.formatter -> snapshot -> unit
(** Multi-line [name{labels}: value] rendering derived from {!fields},
    followed by the substitution list. *)

val registry_of : snapshot -> Support.Registry.t
(** The snapshot loaded into a {!Support.Registry}: one counter per
    {!fields} entry plus a labeled [substitutions] counter. *)

val to_json : snapshot -> string
(** [{"metrics": <registry JSON>, "substitutions": [{uid, device}...]}]
    — derived from {!fields} via {!registry_of}. *)

val to_text : snapshot -> string
(** OpenMetrics-style text exposition of {!registry_of} (scrapeable by
    a future [lmc serve]). *)

val cpu_ns_per_instruction : float
(** ~6ns: a ~2GHz core spending a dozen cycles per interpreted
    bytecode instruction — the paper's JVM execution regime. *)

val native_ns_per_instruction : float
(** ~0.75ns: the same operation compiled to native code. *)

val modeled_cpu_ns : t -> float
val modeled_accelerator_ns : t -> float
(** Device kernels + native execution + all boundary transfers. *)
