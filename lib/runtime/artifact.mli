(** Artifacts and manifests (paper sections 1 and 3).

    A compilation produces "a collection of artifacts for different
    architectures, each labeled with the particular computational node
    that it implements"; the manifest records every artifact's unique
    task identifier plus the exclusions each backend declared.

    Bytecode needs no artifact entry: the CPU compiler always compiles
    the entire program, so every task implicitly has a bytecode
    implementation. *)

module Ir = Lime_ir.Ir

(** Computational elements. [Cpu] is interpretation (no artifact);
    [Native] is the paper's section-5 C shared-library configuration. *)
type device = Cpu | Native | Gpu | Fpga

val device_name : device -> string

type gpu_kind =
  | G_map of Ir.map_site
  | G_reduce of Ir.reduce_site
  | G_filter_chain of Ir.filter_info list
      (** a fused elementwise kernel over consecutive pure filters *)

type gpu_artifact = {
  ga_uid : string;
  ga_kind : gpu_kind;
  ga_opencl : string;  (** generated OpenCL C source *)
}

type fpga_artifact = {
  fa_uid : string;
  fa_filters : Ir.filter_info list;
  fa_verilog : string;  (** generated Verilog source *)
}

type native_artifact = {
  na_uid : string;
  na_filters : Ir.filter_info list;
  na_c : string;  (** generated C source of the shared library *)
}

type t =
  | Gpu_kernel of gpu_artifact
  | Fpga_module of fpga_artifact
  | Native_binary of native_artifact

val uid : t -> string
val device : t -> device

val chain_uid : Ir.filter_info list -> string
(** The UID of a substitution covering a consecutive filter chain: the
    member task UIDs joined with [+]. *)

(** {2 Fused-segment naming} (see {!Lime_ir.Fuse} and [docs/FUSION.md])

    A fused artifact's uid is ["fuse:" ^ chain_uid members], so the
    pre-fusion segment names are recoverable from the artifact name
    alone — fault-injection specs keep matching, and unfuse-on-fault
    knows which per-stage chain to re-plan. *)

val fused_prefix : string
val fused_uid : Ir.filter_info list -> string
val is_fused_uid : string -> bool

val fused_members : string -> string list
(** Member uids behind a (possibly fused) uid; a plain uid is its own
    single member. *)

val describe : t -> string

type manifest_entry = { me_uid : string; me_device : device; me_desc : string }

type exclusion = {
  ex_uid : string;  (** task or kernel-site UID *)
  ex_device : device;
  ex_reason : string;  (** why the backend excluded it (section 3) *)
}

type manifest = {
  entries : manifest_entry list;
  exclusions : exclusion list;
}

val manifest_entry_of : t -> manifest_entry
val pp_manifest : Format.formatter -> manifest -> unit
