module I = Lime_ir.Interp
module V = Wire.Value

type session = { compiled_ : Compiler.compiled; engine_ : Runtime.Exec.t }

let load ?policy ?gpu_device ?fifo_capacity ?schedule ?model_divergence
    ?chunk_elements ?max_retries ?retry_backoff_ns ?cost_model ?replan_factor
    ?lower_mapreduce ?map_chunks ?reduce_chunks ?fuse source =
  let compiled_ = Compiler.compile ?fuse source in
  let engine_ =
    Compiler.engine ?policy ?gpu_device ?fifo_capacity ?schedule
      ?model_divergence ?chunk_elements ?max_retries ?retry_backoff_ns
      ?cost_model ?replan_factor ?lower_mapreduce ?map_chunks ?reduce_chunks
      ?fuse compiled_
  in
  { compiled_; engine_ }

let run t key args = Runtime.Exec.call t.engine_ key args
let set_policy t p = Runtime.Exec.set_policy t.engine_ p
let manifest t = Compiler.manifest t.compiled_

let manifest_text t =
  Format.asprintf "%a" Runtime.Artifact.pp_manifest (manifest t)

let metrics t = Runtime.Metrics.snapshot (Runtime.Exec.metrics t.engine_)
let reset_metrics t = Runtime.Metrics.reset (Runtime.Exec.metrics t.engine_)
let last_plan t = Runtime.Exec.last_plan t.engine_
let engine t = t.engine_
let compiled t = t.compiled_
let program t = Runtime.Exec.program t.engine_

let int i = I.Prim (V.Int (V.norm32 i))
let float f = I.Prim (V.Float (V.f32 f))
let bool b = I.Prim (V.Bool b)
let bit b = I.Prim (V.Bit b)
let bits s = I.Prim (V.Bits (Bits.Bitvec.of_literal s))
let int_array a = I.Prim (V.Int_array (Array.map V.norm32 a))
let float_array a = I.Prim (V.Float_array (Array.map V.f32 a))

let type_error expected v =
  invalid_arg
    (Printf.sprintf "Lm: expected %s, got %s" expected
       (Format.asprintf "%a" I.pp v))

let as_int = function I.Prim (V.Int i) -> i | v -> type_error "int" v
let as_float = function I.Prim (V.Float f) -> f | v -> type_error "float" v

let as_int_array = function
  | I.Prim (V.Int_array a) -> a
  | v -> type_error "int[]" v

let as_float_array = function
  | I.Prim (V.Float_array a) -> a
  | v -> type_error "float[]" v

let as_bits_literal = function
  | I.Prim (V.Bits b) -> Bits.Bitvec.to_literal b
  | v -> type_error "bit[]" v

let show v = Format.asprintf "%a" I.pp v
