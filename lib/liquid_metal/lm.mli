(** The public facade: compile Lime source and co-execute it.

    {[
      let session = Lm.load bitflip_source in
      let result =
        Lm.run session "Bitflip.taskFlip" [ Lm.bits "101010101" ]
      in
      print_endline (Lm.show result)
    ]} *)

module I = Lime_ir.Interp

type session

val load :
  ?policy:Runtime.Substitute.policy ->
  ?gpu_device:Gpu.Device.t ->
  ?fifo_capacity:int ->
  ?schedule:Runtime.Scheduler.mode ->
  ?model_divergence:bool ->
  ?chunk_elements:int ->
  ?max_retries:int ->
  ?retry_backoff_ns:float ->
  ?cost_model:Runtime.Exec.cost_model ->
  ?replan_factor:float ->
  ?lower_mapreduce:bool ->
  ?map_chunks:int ->
  ?reduce_chunks:int ->
  ?fuse:bool ->
  string ->
  session
(** Compile a Lime compilation unit (all backends) and attach a
    co-execution engine. Default policy is the paper's
    [Prefer_accelerators]; [max_retries]/[retry_backoff_ns] configure
    the failure protocol, [cost_model]/[replan_factor] the placement
    cost model and online re-planning, and
    [lower_mapreduce]/[map_chunks]/[reduce_chunks] the lowered
    kernel-site execution (see {!Runtime.Exec.create}).
    [fuse] (default [true]) controls cross-filter fusion end to end:
    when [false] no fused artifacts are generated and the engine plans
    per-stage segments only (see docs/FUSION.md). *)

val run : session -> string -> I.v list -> I.v
(** [run session "Class.method" args]. *)

val set_policy : session -> Runtime.Substitute.policy -> unit
val manifest : session -> Runtime.Artifact.manifest
val manifest_text : session -> string
val metrics : session -> Runtime.Metrics.snapshot
val reset_metrics : session -> unit
val last_plan : session -> string option
val engine : session -> Runtime.Exec.t
val compiled : session -> Compiler.compiled
val program : session -> Lime_ir.Ir.program

(** {2 Value construction and inspection} *)

val int : int -> I.v
val float : float -> I.v
val bool : bool -> I.v
val bit : bool -> I.v
val bits : string -> I.v
(** [bits "100"] is the bit literal [100b]. *)

val int_array : int array -> I.v
val float_array : float array -> I.v

val as_int : I.v -> int
val as_float : I.v -> float
val as_int_array : I.v -> int array
val as_float_array : I.v -> float array
val as_bits_literal : I.v -> string
val show : I.v -> string
