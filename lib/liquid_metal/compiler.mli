module Ir = Lime_ir.Ir

(** The Liquid Metal compiler driver (the toolchain of Figure 2).

    [compile] runs the frontend (lex, parse, typecheck, lower) and then
    gives each quasi-independent backend compiler a chance to produce
    artifacts:

    - the bytecode backend always compiles the entire program, so every
      task has at least one implementation;
    - the OpenCL/GPU backend compiles suitable map sites, reduce sites
      and every contiguous subchain of suitable relocatable pure
      filters (fused elementwise kernels);
    - the Verilog/FPGA backend compiles every contiguous subchain of
      synthesizable relocatable filters (pipelines of unpipelined
      modules with FIFOs), including stateful filters whose fields
      become registers;
    - cross-filter fusion (on by default) collapses each maximal
      fusible run proven by [Analysis.Fusability] into one synthetic
      filter ([Lime_ir.Fuse]) and registers a fused OpenCL kernel and
      a fully-pipelined RTL module for it, plus a fusion-registry
      entry so bytecode plans execute the run as one segment. No fused
      native artifact is needed: the native backend already compiles a
      whole chain into one shared library with one JNI round trip.

    Tasks a backend cannot handle are excluded and the reason recorded
    in the manifest (paper section 3). *)

type compiled = {
  unit_ : Bytecode.Compile.unit_;  (** the bytecode artifact (whole program) *)
  store : Runtime.Store.t;  (** backend artifacts, keyed by task UID *)
  ir : Ir.program;  (** the optimized IR the backends consumed *)
  lowered : Lime_ir.Lower_mapreduce.lowered Ir.String_map.t;
      (** every map/reduce kernel site lowered onto the task-graph
          substrate ([Lime_ir.Lower_mapreduce]), keyed by site UID *)
  report : Analysis.Report.t;
      (** static-analysis results: effect summaries, value ranges,
          task-graph lint ([lmc analyze] renders these) *)
  phase_seconds : (string * float) list;
      (** wall time per compiler phase, frontend and backends *)
}

val compile : ?file:string -> ?fuse:bool -> string -> compiled
(** [fuse] (default on) enables the cross-filter fusion pass and the
    fused backends; the per-stage artifacts are emitted either way.
    @raise Support.Diag.Compile_error on frontend errors. *)

val manifest : compiled -> Runtime.Artifact.manifest

val engine :
  ?policy:Runtime.Substitute.policy ->
  ?fuse:bool ->
  ?gpu_device:Gpu.Device.t ->
  ?fifo_capacity:int ->
  ?schedule:Runtime.Scheduler.mode ->
  ?boundary:Wire.Boundary.t ->
  ?model_divergence:bool ->
  ?chunk_elements:int ->
  ?max_retries:int ->
  ?retry_backoff_ns:float ->
  ?cost_model:Runtime.Exec.cost_model ->
  ?replan_factor:float ->
  ?lower_mapreduce:bool ->
  ?map_chunks:int ->
  ?reduce_chunks:int ->
  compiled ->
  Runtime.Exec.t
(** A co-execution engine over the compiled artifacts.
    [max_retries]/[retry_backoff_ns] configure the failure protocol,
    [cost_model]/[replan_factor] the placement cost model and online
    re-planning, [lower_mapreduce]/[map_chunks]/[reduce_chunks] the
    lowered kernel-site execution (see {!Runtime.Exec.create}). *)
