module Ir = Lime_ir.Ir

type compiled = {
  unit_ : Bytecode.Compile.unit_;
  store : Runtime.Store.t;
  ir : Ir.program;
  lowered : Lime_ir.Lower_mapreduce.lowered Ir.String_map.t;
  report : Analysis.Report.t;
  phase_seconds : (string * float) list;
}

let timed ?args phases name f =
  Support.Trace.with_span ?args ~cat:"compiler" name (fun () ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      phases := (name, Unix.gettimeofday () -. t0) :: !phases;
      r)

(* A backend phase additionally records how many artifacts it produced
   (span arg [artifacts]), read off the store before and after. *)
let timed_backend phases store name f =
  let before = Runtime.Store.artifact_count store in
  let sp = Support.Trace.begin_span ~cat:"compiler" name in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  phases := (name, Unix.gettimeofday () -. t0) :: !phases;
  Support.Trace.end_span
    ~args:
      [
        ( "artifacts",
          Support.Trace.Int (Runtime.Store.artifact_count store - before) );
      ]
    sp;
  r

(* Contiguous subchains of a run of filters, longest first — the
   runtime's substitution prefers larger, so larger artifacts are the
   interesting ones, but every size exists for the smaller policies. *)
let subchains (run : Ir.filter_info list) =
  let arr = Array.of_list run in
  let n = Array.length arr in
  let out = ref [] in
  for len = 1 to n do
    for start = 0 to n - len do
      out := Array.to_list (Array.sub arr start len) :: !out
    done
  done;
  !out

(* Maximal runs of relocatable filters satisfying [suitable], paired
   with per-filter exclusion reasons for the rest. *)
let relocatable_runs ~suitable (filters : Ir.filter_info list) =
  let rec go acc current = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | (f : Ir.filter_info) :: rest -> (
      if not f.relocatable then
        go (if current = [] then acc else List.rev current :: acc) [] rest
      else
        match suitable f with
        | Ok () -> go acc (f :: current) rest
        | Error _ ->
          go (if current = [] then acc else List.rev current :: acc) [] rest)
  in
  go [] [] filters

let gpu_backend ~effects (prog : Ir.program) (store : Runtime.Store.t) =
  (* Map and reduce sites. *)
  List.iter
    (fun site ->
      match site with
      | `Map (m : Ir.map_site) -> (
        match Gpu.Suitability.check_fn ~effects prog m.map_fn with
        | Gpu.Suitability.Suitable ->
          Runtime.Store.add store
            (Runtime.Artifact.Gpu_kernel
               {
                 ga_uid = m.map_uid;
                 ga_kind = Runtime.Artifact.G_map m;
                 ga_opencl = Gpu.Opencl_gen.map_kernel_text prog m;
               })
        | Gpu.Suitability.Excluded reason ->
          Runtime.Store.record_exclusion store ~uid:m.map_uid
            ~device:Runtime.Artifact.Gpu ~reason)
      | `Reduce (r : Ir.reduce_site) -> (
        match Gpu.Suitability.check_fn ~effects prog r.red_fn with
        | Gpu.Suitability.Suitable ->
          Runtime.Store.add store
            (Runtime.Artifact.Gpu_kernel
               {
                 ga_uid = r.red_uid;
                 ga_kind = Runtime.Artifact.G_reduce r;
                 ga_opencl = Gpu.Opencl_gen.reduce_kernel_text prog r;
               })
        | Gpu.Suitability.Excluded reason ->
          Runtime.Store.record_exclusion store ~uid:r.red_uid
            ~device:Runtime.Artifact.Gpu ~reason))
    (Ir.kernel_sites prog);
  (* Filter chains of the task graphs: the GPU runs pure (static)
     filters only. *)
  let gpu_suitable (f : Ir.filter_info) =
    match f.target with
    | Ir.F_instance _ -> Error "stateful filters do not map to OpenCL kernels"
    | Ir.F_static key -> (
      match Gpu.Suitability.check_fn ~effects prog key with
      | Gpu.Suitability.Suitable -> Ok ()
      | Gpu.Suitability.Excluded reason -> Error reason)
  in
  Ir.String_map.iter
    (fun _ (gt : Ir.graph_template) ->
      let filters =
        List.filter_map
          (function Ir.N_filter f -> Some f | Ir.N_source _ | Ir.N_sink _ -> None)
          gt.gt_nodes
      in
      (* Record exclusions for relocatable-but-unsuitable filters. *)
      List.iter
        (fun (f : Ir.filter_info) ->
          if f.relocatable then
            match gpu_suitable f with
            | Ok () -> ()
            | Error reason ->
              Runtime.Store.record_exclusion store ~uid:f.uid
                ~device:Runtime.Artifact.Gpu ~reason)
        filters;
      List.iter
        (fun run ->
          List.iter
            (fun chain ->
              let uid = Runtime.Artifact.chain_uid chain in
              let keys =
                List.map
                  (fun (f : Ir.filter_info) ->
                    match f.target with
                    | Ir.F_static key -> key
                    | Ir.F_instance (cls, m) -> cls ^ "." ^ m)
                  chain
              in
              let first = List.hd chain in
              let last = List.nth chain (List.length chain - 1) in
              Runtime.Store.add store
                (Runtime.Artifact.Gpu_kernel
                   {
                     ga_uid = uid;
                     ga_kind = Runtime.Artifact.G_filter_chain chain;
                     ga_opencl =
                       Gpu.Opencl_gen.filter_kernel_text prog ~uid keys
                         ~input:first.Ir.input ~output:last.Ir.output;
                   }))
            (subchains run))
        (relocatable_runs ~suitable:gpu_suitable filters))
    prog.Ir.templates

let fpga_backend ~effects (prog : Ir.program) (store : Runtime.Store.t) =
  (* One analysis memo for the whole backend: every subchain of a run
     shares the same filters, so without it each callee is
     structurally re-walked O(n^2) times. The effect summaries
     (shared with the GPU backend) reject impure functions before any
     walk. *)
  (* Kernel sites are not synthesized — a lowered worker consumes
     whole array chunks, and the RTL substrate streams scalars — so no
     FPGA artifact (or exclusion: the absence is structural, not a
     property of the function) is recorded for them. *)
  let cache = Rtl.Synth.make_cache () in
  let fpga_suitable (f : Ir.filter_info) =
    match Rtl.Synth.check_filter ~effects ~cache prog f with
    | Rtl.Synth.Suitable -> Ok ()
    | Rtl.Synth.Excluded reason -> Error reason
  in
  Ir.String_map.iter
    (fun _ (gt : Ir.graph_template) ->
      let filters =
        List.filter_map
          (function Ir.N_filter f -> Some f | Ir.N_source _ | Ir.N_sink _ -> None)
          gt.gt_nodes
      in
      List.iter
        (fun (f : Ir.filter_info) ->
          if f.relocatable then
            match fpga_suitable f with
            | Ok () -> ()
            | Error reason ->
              Runtime.Store.record_exclusion store ~uid:f.uid
                ~device:Runtime.Artifact.Fpga ~reason)
        filters;
      List.iter
        (fun run ->
          List.iter
            (fun chain ->
              let uid = Runtime.Artifact.chain_uid chain in
              let pipeline =
                Rtl.Synth.pipeline_of_chain ~effects ~cache prog ~name:uid
                  (List.map (fun f -> f, None) chain)
              in
              Runtime.Store.add store
                (Runtime.Artifact.Fpga_module
                   {
                     fa_uid = uid;
                     fa_filters = chain;
                     fa_verilog = Rtl.Verilog_gen.pipeline_text prog pipeline;
                   }))
            (subchains run))
        (relocatable_runs ~suitable:fpga_suitable filters))
    prog.Ir.templates

(* "In the case of native binaries, the compiler generates C code and
   builds shared libraries that are dynamically loaded by the Liquid
   Metal runtime" (paper section 5). C places no constraint on the IR,
   so every relocatable chain gets a native artifact. *)
let native_backend (prog : Ir.program) (store : Runtime.Store.t) =
  (* Map and reduce sites: the lowered worker filter compiles to C like
     any other chain, so every kernel site gets a native fallback one
     notch above interpreted bytecode. *)
  List.iter
    (fun site ->
      let kind =
        match site with
        | `Map m -> Lime_ir.Lower_mapreduce.K_map m
        | `Reduce r -> Lime_ir.Lower_mapreduce.K_reduce r
      in
      let worker = Lime_ir.Lower_mapreduce.worker_filter kind in
      Runtime.Store.add store
        (Runtime.Artifact.Native_binary
           {
             na_uid = worker.Ir.uid;
             na_filters = [ worker ];
             na_c =
               Native_cpu.C_gen.chain_source_text prog ~uid:worker.Ir.uid
                 [ worker ];
           }))
    (Ir.kernel_sites prog);
  Ir.String_map.iter
    (fun _ (gt : Ir.graph_template) ->
      let filters =
        List.filter_map
          (function Ir.N_filter f -> Some f | Ir.N_source _ | Ir.N_sink _ -> None)
          gt.gt_nodes
      in
      List.iter
        (fun run ->
          List.iter
            (fun chain ->
              let uid = Runtime.Artifact.chain_uid chain in
              Runtime.Store.add store
                (Runtime.Artifact.Native_binary
                   {
                     na_uid = uid;
                     na_filters = chain;
                     na_c = Native_cpu.C_gen.chain_source_text prog ~uid chain;
                   }))
            (subchains run))
        (relocatable_runs ~suitable:(fun _ -> Ok ()) filters))
    prog.Ir.templates

(* Register device artifacts for the synthetic fused filters: one
   OpenCL kernel and one fully-pipelined RTL module per fused run. No
   fused native artifact is emitted — the native backend already
   compiles a whole chain into a single shared library with one JNI
   round trip, so fusion adds nothing there. The fused filter is also
   recorded in the store's fusion registry so bytecode plans execute
   the run as one segment. *)
let fused_backend ~effects (prog : Ir.program) (store : Runtime.Store.t)
    (fusions : Lime_ir.Fuse.fused list) =
  List.iter
    (fun (fz : Lime_ir.Fuse.fused) ->
      let f = fz.Lime_ir.Fuse.fu_filter in
      let uid = f.Ir.uid in
      Runtime.Store.add_fusion store
        ~chain:(Runtime.Artifact.chain_uid fz.Lime_ir.Fuse.fu_members)
        f;
      (match Gpu.Suitability.check_fn ~effects prog uid with
      | Gpu.Suitability.Suitable ->
        Runtime.Store.add store
          (Runtime.Artifact.Gpu_kernel
             {
               ga_uid = uid;
               ga_kind = Runtime.Artifact.G_filter_chain [ f ];
               ga_opencl =
                 Gpu.Opencl_gen.filter_kernel_text prog ~uid [ uid ]
                   ~input:f.Ir.input ~output:f.Ir.output;
             })
      | Gpu.Suitability.Excluded reason ->
        Runtime.Store.record_exclusion store ~uid
          ~device:Runtime.Artifact.Gpu ~reason);
      let cache = Rtl.Synth.make_cache () in
      match Rtl.Synth.check_filter ~effects ~cache prog f with
      | Rtl.Synth.Suitable -> (
        match
          Rtl.Synth.pipeline_of_chain ~effects ~cache prog ~name:uid
            ~pipelined:true
            [ f, None ]
        with
        | pipeline ->
          Runtime.Store.add store
            (Runtime.Artifact.Fpga_module
               {
                 fa_uid = uid;
                 fa_filters = [ f ];
                 fa_verilog = Rtl.Verilog_gen.pipeline_text prog pipeline;
               })
        | exception
            (Rtl.Netlist.Synthesis_error reason
            | Rtl.Verilog_gen.Unsynthesizable reason) ->
          Runtime.Store.record_exclusion store ~uid
            ~device:Runtime.Artifact.Fpga ~reason)
      | Rtl.Synth.Excluded reason ->
        Runtime.Store.record_exclusion store ~uid
          ~device:Runtime.Artifact.Fpga ~reason)
    fusions

let compile ?(file = "<lime>") ?(fuse = true) source : compiled =
  let phases = ref [] in
  let ast = timed phases "parse" (fun () -> Lime_syntax.Parser.parse ~file source) in
  let tast = timed phases "typecheck" (fun () -> Lime_types.Typecheck.check ast) in
  let prog = timed phases "lower" (fun () -> Lime_ir.Lower.lower tast) in
  (* the paper's "shallow optimizations" (section 3) *)
  let prog = timed phases "optimize" (fun () -> Lime_ir.Opt.optimize prog) in
  (* Static analysis over the optimized IR: effect inference (shared
     with the GPU backend below), value ranges, task-graph lint. *)
  let report = timed phases "analyze" (fun () -> Analysis.Report.analyze prog) in
  (* Cross-filter fusion: collapse each maximal fusible run the
     analysis proved into one synthetic filter, then re-analyze so the
     fused bodies get their own effect summaries and bounds proofs
     (composition carries the members' proofs: the fused body contains
     the same accesses under the same guards). Templates are
     untouched, so the diagnostics of the re-analysis match the first
     pass plus any fused-body findings. *)
  let prog, fusions, report =
    if not fuse then prog, [], report
    else
      let rr =
        Analysis.Fusability.runs prog report.Analysis.Report.effects
      in
      match rr.Analysis.Fusability.rr_runs with
      | [] -> prog, [], report
      | runs ->
        let prog, fusions =
          timed phases "fuse" (fun () ->
              Lime_ir.Fuse.fuse_program prog
                (List.map
                   (fun (r : Analysis.Fusability.run) ->
                     r.Analysis.Fusability.fr_members)
                   runs))
        in
        let report =
          timed phases "analyze-fused" (fun () ->
              Analysis.Report.analyze prog)
        in
        prog, fusions, report
  in
  let unit_ =
    (* The analysis and the backends walk the same program value, so
       the per-instruction bounds proofs carry over by identity. *)
    timed phases "bytecode-backend" (fun () ->
        Bytecode.Compile.compile_program
          ~proven:(Analysis.Report.prover report)
          prog)
  in
  let store = Runtime.Store.create () in
  timed_backend phases store "native-backend" (fun () ->
      native_backend prog store);
  timed_backend phases store "gpu-backend" (fun () ->
      gpu_backend ~effects:report.Analysis.Report.effects prog store);
  timed_backend phases store "fpga-backend" (fun () ->
      fpga_backend ~effects:report.Analysis.Report.effects prog store);
  if fusions <> [] then
    timed_backend phases store "fuse-backend" (fun () ->
        fused_backend ~effects:report.Analysis.Report.effects prog store
          fusions);
  let lowered = Lime_ir.Lower_mapreduce.lower_program prog in
  { unit_; store; ir = prog; lowered; report; phase_seconds = List.rev !phases }

let manifest (c : compiled) = Runtime.Store.manifest c.store

let engine ?policy ?fuse ?gpu_device ?fifo_capacity ?schedule ?boundary
    ?model_divergence ?chunk_elements ?max_retries ?retry_backoff_ns
    ?cost_model ?replan_factor ?lower_mapreduce ?map_chunks ?reduce_chunks
    (c : compiled) =
  Runtime.Exec.create ?policy ?fuse ?gpu_device ?fifo_capacity ?schedule
    ?boundary ?model_divergence ?chunk_elements ?max_retries ?retry_backoff_ns
    ?cost_model ?replan_factor ?lower_mapreduce ?map_chunks ?reduce_chunks
    c.unit_ c.store
