module Ir = Lime_ir.Ir

type compiled = {
  unit_ : Bytecode.Compile.unit_;
  store : Runtime.Store.t;
  ir : Ir.program;
  lowered : Lime_ir.Lower_mapreduce.lowered Ir.String_map.t;
  report : Analysis.Report.t;
  phase_seconds : (string * float) list;
}

let timed ?args phases name f =
  Support.Trace.with_span ?args ~cat:"compiler" name (fun () ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      phases := (name, Unix.gettimeofday () -. t0) :: !phases;
      r)

(* A backend phase additionally records how many artifacts it produced
   (span arg [artifacts]), read off the store before and after. *)
let timed_backend phases store name f =
  let before = Runtime.Store.artifact_count store in
  let sp = Support.Trace.begin_span ~cat:"compiler" name in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  phases := (name, Unix.gettimeofday () -. t0) :: !phases;
  Support.Trace.end_span
    ~args:
      [
        ( "artifacts",
          Support.Trace.Int (Runtime.Store.artifact_count store - before) );
      ]
    sp;
  r

(* Contiguous subchains of a run of filters, longest first — the
   runtime's substitution prefers larger, so larger artifacts are the
   interesting ones, but every size exists for the smaller policies. *)
let subchains (run : Ir.filter_info list) =
  let arr = Array.of_list run in
  let n = Array.length arr in
  let out = ref [] in
  for len = 1 to n do
    for start = 0 to n - len do
      out := Array.to_list (Array.sub arr start len) :: !out
    done
  done;
  !out

(* Maximal runs of relocatable filters satisfying [suitable], paired
   with per-filter exclusion reasons for the rest. *)
let relocatable_runs ~suitable (filters : Ir.filter_info list) =
  let rec go acc current = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | (f : Ir.filter_info) :: rest -> (
      if not f.relocatable then
        go (if current = [] then acc else List.rev current :: acc) [] rest
      else
        match suitable f with
        | Ok () -> go acc (f :: current) rest
        | Error _ ->
          go (if current = [] then acc else List.rev current :: acc) [] rest)
  in
  go [] [] filters

let gpu_backend ~effects (prog : Ir.program) (store : Runtime.Store.t) =
  (* Map and reduce sites. *)
  List.iter
    (fun site ->
      match site with
      | `Map (m : Ir.map_site) -> (
        match Gpu.Suitability.check_fn ~effects prog m.map_fn with
        | Gpu.Suitability.Suitable ->
          Runtime.Store.add store
            (Runtime.Artifact.Gpu_kernel
               {
                 ga_uid = m.map_uid;
                 ga_kind = Runtime.Artifact.G_map m;
                 ga_opencl = Gpu.Opencl_gen.map_kernel_text prog m;
               })
        | Gpu.Suitability.Excluded reason ->
          Runtime.Store.record_exclusion store ~uid:m.map_uid
            ~device:Runtime.Artifact.Gpu ~reason)
      | `Reduce (r : Ir.reduce_site) -> (
        match Gpu.Suitability.check_fn ~effects prog r.red_fn with
        | Gpu.Suitability.Suitable ->
          Runtime.Store.add store
            (Runtime.Artifact.Gpu_kernel
               {
                 ga_uid = r.red_uid;
                 ga_kind = Runtime.Artifact.G_reduce r;
                 ga_opencl = Gpu.Opencl_gen.reduce_kernel_text prog r;
               })
        | Gpu.Suitability.Excluded reason ->
          Runtime.Store.record_exclusion store ~uid:r.red_uid
            ~device:Runtime.Artifact.Gpu ~reason))
    (Ir.kernel_sites prog);
  (* Filter chains of the task graphs: the GPU runs pure (static)
     filters only. *)
  let gpu_suitable (f : Ir.filter_info) =
    match f.target with
    | Ir.F_instance _ -> Error "stateful filters do not map to OpenCL kernels"
    | Ir.F_static key -> (
      match Gpu.Suitability.check_fn ~effects prog key with
      | Gpu.Suitability.Suitable -> Ok ()
      | Gpu.Suitability.Excluded reason -> Error reason)
  in
  Ir.String_map.iter
    (fun _ (gt : Ir.graph_template) ->
      let filters =
        List.filter_map
          (function Ir.N_filter f -> Some f | Ir.N_source _ | Ir.N_sink _ -> None)
          gt.gt_nodes
      in
      (* Record exclusions for relocatable-but-unsuitable filters. *)
      List.iter
        (fun (f : Ir.filter_info) ->
          if f.relocatable then
            match gpu_suitable f with
            | Ok () -> ()
            | Error reason ->
              Runtime.Store.record_exclusion store ~uid:f.uid
                ~device:Runtime.Artifact.Gpu ~reason)
        filters;
      List.iter
        (fun run ->
          List.iter
            (fun chain ->
              let uid = Runtime.Artifact.chain_uid chain in
              let keys =
                List.map
                  (fun (f : Ir.filter_info) ->
                    match f.target with
                    | Ir.F_static key -> key
                    | Ir.F_instance (cls, m) -> cls ^ "." ^ m)
                  chain
              in
              let first = List.hd chain in
              let last = List.nth chain (List.length chain - 1) in
              Runtime.Store.add store
                (Runtime.Artifact.Gpu_kernel
                   {
                     ga_uid = uid;
                     ga_kind = Runtime.Artifact.G_filter_chain chain;
                     ga_opencl =
                       Gpu.Opencl_gen.filter_kernel_text prog ~uid keys
                         ~input:first.Ir.input ~output:last.Ir.output;
                   }))
            (subchains run))
        (relocatable_runs ~suitable:gpu_suitable filters))
    prog.Ir.templates

let fpga_backend ~effects (prog : Ir.program) (store : Runtime.Store.t) =
  (* One analysis memo for the whole backend: every subchain of a run
     shares the same filters, so without it each callee is
     structurally re-walked O(n^2) times. The effect summaries
     (shared with the GPU backend) reject impure functions before any
     walk. *)
  (* Kernel sites are not synthesized — a lowered worker consumes
     whole array chunks, and the RTL substrate streams scalars — so no
     FPGA artifact (or exclusion: the absence is structural, not a
     property of the function) is recorded for them. *)
  let cache = Rtl.Synth.make_cache () in
  let fpga_suitable (f : Ir.filter_info) =
    match Rtl.Synth.check_filter ~effects ~cache prog f with
    | Rtl.Synth.Suitable -> Ok ()
    | Rtl.Synth.Excluded reason -> Error reason
  in
  Ir.String_map.iter
    (fun _ (gt : Ir.graph_template) ->
      let filters =
        List.filter_map
          (function Ir.N_filter f -> Some f | Ir.N_source _ | Ir.N_sink _ -> None)
          gt.gt_nodes
      in
      List.iter
        (fun (f : Ir.filter_info) ->
          if f.relocatable then
            match fpga_suitable f with
            | Ok () -> ()
            | Error reason ->
              Runtime.Store.record_exclusion store ~uid:f.uid
                ~device:Runtime.Artifact.Fpga ~reason)
        filters;
      List.iter
        (fun run ->
          List.iter
            (fun chain ->
              let uid = Runtime.Artifact.chain_uid chain in
              let pipeline =
                Rtl.Synth.pipeline_of_chain ~effects ~cache prog ~name:uid
                  (List.map (fun f -> f, None) chain)
              in
              Runtime.Store.add store
                (Runtime.Artifact.Fpga_module
                   {
                     fa_uid = uid;
                     fa_filters = chain;
                     fa_verilog = Rtl.Verilog_gen.pipeline_text prog pipeline;
                   }))
            (subchains run))
        (relocatable_runs ~suitable:fpga_suitable filters))
    prog.Ir.templates

(* "In the case of native binaries, the compiler generates C code and
   builds shared libraries that are dynamically loaded by the Liquid
   Metal runtime" (paper section 5). C places no constraint on the IR,
   so every relocatable chain gets a native artifact. *)
let native_backend (prog : Ir.program) (store : Runtime.Store.t) =
  (* Map and reduce sites: the lowered worker filter compiles to C like
     any other chain, so every kernel site gets a native fallback one
     notch above interpreted bytecode. *)
  List.iter
    (fun site ->
      let kind =
        match site with
        | `Map m -> Lime_ir.Lower_mapreduce.K_map m
        | `Reduce r -> Lime_ir.Lower_mapreduce.K_reduce r
      in
      let worker = Lime_ir.Lower_mapreduce.worker_filter kind in
      Runtime.Store.add store
        (Runtime.Artifact.Native_binary
           {
             na_uid = worker.Ir.uid;
             na_filters = [ worker ];
             na_c =
               Native_cpu.C_gen.chain_source_text prog ~uid:worker.Ir.uid
                 [ worker ];
           }))
    (Ir.kernel_sites prog);
  Ir.String_map.iter
    (fun _ (gt : Ir.graph_template) ->
      let filters =
        List.filter_map
          (function Ir.N_filter f -> Some f | Ir.N_source _ | Ir.N_sink _ -> None)
          gt.gt_nodes
      in
      List.iter
        (fun run ->
          List.iter
            (fun chain ->
              let uid = Runtime.Artifact.chain_uid chain in
              Runtime.Store.add store
                (Runtime.Artifact.Native_binary
                   {
                     na_uid = uid;
                     na_filters = chain;
                     na_c = Native_cpu.C_gen.chain_source_text prog ~uid chain;
                   }))
            (subchains run))
        (relocatable_runs ~suitable:(fun _ -> Ok ()) filters))
    prog.Ir.templates

let compile ?(file = "<lime>") source : compiled =
  let phases = ref [] in
  let ast = timed phases "parse" (fun () -> Lime_syntax.Parser.parse ~file source) in
  let tast = timed phases "typecheck" (fun () -> Lime_types.Typecheck.check ast) in
  let prog = timed phases "lower" (fun () -> Lime_ir.Lower.lower tast) in
  (* the paper's "shallow optimizations" (section 3) *)
  let prog = timed phases "optimize" (fun () -> Lime_ir.Opt.optimize prog) in
  (* Static analysis over the optimized IR: effect inference (shared
     with the GPU backend below), value ranges, task-graph lint. *)
  let report = timed phases "analyze" (fun () -> Analysis.Report.analyze prog) in
  let unit_ =
    (* The analysis and the backends walk the same program value, so
       the per-instruction bounds proofs carry over by identity. *)
    timed phases "bytecode-backend" (fun () ->
        Bytecode.Compile.compile_program
          ~proven:(Analysis.Report.prover report)
          prog)
  in
  let store = Runtime.Store.create () in
  timed_backend phases store "native-backend" (fun () ->
      native_backend prog store);
  timed_backend phases store "gpu-backend" (fun () ->
      gpu_backend ~effects:report.Analysis.Report.effects prog store);
  timed_backend phases store "fpga-backend" (fun () ->
      fpga_backend ~effects:report.Analysis.Report.effects prog store);
  let lowered = Lime_ir.Lower_mapreduce.lower_program prog in
  { unit_; store; ir = prog; lowered; report; phase_seconds = List.rev !phases }

let manifest (c : compiled) = Runtime.Store.manifest c.store

let engine ?policy ?gpu_device ?fifo_capacity ?schedule ?boundary
    ?model_divergence ?chunk_elements ?max_retries ?retry_backoff_ns
    ?cost_model ?replan_factor ?lower_mapreduce ?map_chunks ?reduce_chunks
    (c : compiled) =
  Runtime.Exec.create ?policy ?gpu_device ?fifo_capacity ?schedule ?boundary
    ?model_divergence ?chunk_elements ?max_retries ?retry_backoff_ns
    ?cost_model ?replan_factor ?lower_mapreduce ?map_chunks ?reduce_chunks
    c.unit_ c.store
