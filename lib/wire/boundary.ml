module Native = struct
  type t = { ty : Codec.ty; data : Bytes.t }

  let ty t = t.ty
  let data t = t.data
  let byte_length t = Bytes.length t.data
  let to_value t = Codec.decode_bytes t.ty t.data
end

type stats = {
  crossings_to_device : int;
  crossings_to_host : int;
  bytes_to_device : int;
  bytes_to_host : int;
  modeled_transfer_ns : float;
}

type t = {
  label : string;
  latency_ns : float;
  bandwidth_bytes_per_ns : float;
  mutable crossings_to_device : int;
  mutable crossings_to_host : int;
  mutable bytes_to_device : int;
  mutable bytes_to_host : int;
  mutable modeled_transfer_ns : float;
}

let create ?(label = "boundary") ?(latency_ns = 10_000.0)
    ?(bandwidth_bytes_per_ns = 8.0) () =
  {
    label;
    latency_ns;
    bandwidth_bytes_per_ns;
    crossings_to_device = 0;
    crossings_to_host = 0;
    bytes_to_device = 0;
    bytes_to_host = 0;
    modeled_transfer_ns = 0.0;
  }

let label t = t.label

let transfer_ns t bytes =
  t.latency_ns +. (float_of_int bytes /. t.bandwidth_bytes_per_ns)

(* A streaming crossing rides an already-open transfer window: a fused
   segment that crossed to the device pays the round-trip latency once
   on the way in, and its result streams back overlapped with compute,
   so the return leg is bandwidth-only. *)
let streaming_transfer_ns t bytes =
  float_of_int bytes /. t.bandwidth_bytes_per_ns

(* Each crossing samples the cumulative byte counters into the trace,
   so a Chrome viewer shows the traffic on each boundary over time. *)
let trace_crossing t =
  if Support.Trace.enabled () then
    Support.Trace.counter
      ("boundary:" ^ t.label)
      [
        "bytes_to_device", float_of_int t.bytes_to_device;
        "bytes_to_host", float_of_int t.bytes_to_host;
      ]

let to_device t ty v =
  let sp =
    if Support.Trace.enabled () then
      Support.Trace.begin_span ~cat:"boundary"
        ("marshal:" ^ t.label ^ ":to-device")
    else Support.Trace.no_span
  in
  Support.Fault.check ~device:"wire" ~segment:t.label;
  (* Step 1: serialize the Lime value to a byte array. *)
  let data = Codec.encode_bytes ty v in
  (* Step 2: cross the JNI boundary (modeled). *)
  let n = Bytes.length data in
  t.crossings_to_device <- t.crossings_to_device + 1;
  t.bytes_to_device <- t.bytes_to_device + n;
  t.modeled_transfer_ns <- t.modeled_transfer_ns +. transfer_ns t n;
  trace_crossing t;
  (* the args list is only built when a sink is installed *)
  if Support.Trace.enabled () then
    Support.Trace.end_span
      ~args:
        [
          "bytes", Support.Trace.Int n;
          "modeled_ns", Support.Trace.Float (transfer_ns t n);
        ]
      sp;
  (* Step 3: the C side keeps the densely packed form directly. *)
  { Native.ty; data }

let native_of_value ty v = { Native.ty; data = Codec.encode_bytes ty v }

let to_host ?(streaming = false) t (native : Native.t) =
  let sp =
    if Support.Trace.enabled () then
      Support.Trace.begin_span ~cat:"boundary"
        ("marshal:" ^ t.label ^ ":to-host")
    else Support.Trace.no_span
  in
  Support.Fault.check ~device:"wire" ~segment:t.label;
  let n = Bytes.length native.data in
  let cost = if streaming then streaming_transfer_ns t n else transfer_ns t n in
  t.crossings_to_host <- t.crossings_to_host + 1;
  t.bytes_to_host <- t.bytes_to_host + n;
  t.modeled_transfer_ns <- t.modeled_transfer_ns +. cost;
  trace_crossing t;
  (* Deserialize from the byte array back into a heap-resident value. *)
  let v = Native.to_value native in
  if Support.Trace.enabled () then
    Support.Trace.end_span
      ~args:
        [
          "bytes", Support.Trace.Int n;
          "modeled_ns", Support.Trace.Float cost;
        ]
      sp;
  v

let stats t =
  {
    crossings_to_device = t.crossings_to_device;
    crossings_to_host = t.crossings_to_host;
    bytes_to_device = t.bytes_to_device;
    bytes_to_host = t.bytes_to_host;
    modeled_transfer_ns = t.modeled_transfer_ns;
  }

let reset_stats t =
  t.crossings_to_device <- 0;
  t.crossings_to_host <- 0;
  t.bytes_to_device <- 0;
  t.bytes_to_host <- 0;
  t.modeled_transfer_ns <- 0.0
