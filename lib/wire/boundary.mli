(** The host/device boundary (the paper's JNI boundary, Figure 3).

    A transfer from the JVM to a native device takes three steps:
    serialize the Lime value to a byte array, cross the JNI boundary,
    and convert the byte array into a dense C-style value. The return
    path is the mirror image. This module performs the first and third
    steps for real (so their cost is measurable) and *models* the cost
    of the crossing itself (per-crossing latency plus bytes/bandwidth),
    accumulating both into per-boundary statistics. *)

(** A dense, C-style native value: the device-side result of step 3. *)
module Native : sig
  type t

  val ty : t -> Codec.ty
  val data : t -> Bytes.t
  val byte_length : t -> int

  val to_value : t -> Value.t
  (** Unpack back into a heap-resident Lime value. *)
end

type stats = {
  crossings_to_device : int;
  crossings_to_host : int;
  bytes_to_device : int;
  bytes_to_host : int;
  modeled_transfer_ns : float;
      (** accumulated crossing cost under the latency/bandwidth model *)
}

type t

val create :
  ?label:string ->
  ?latency_ns:float ->
  ?bandwidth_bytes_per_ns:float ->
  unit ->
  t
(** Defaults model a PCIe 2.0 x16-class link: 10_000 ns per crossing
    and 8 bytes/ns (~8 GB/s). [label] (default ["boundary"]) names the
    boundary in trace counter events ([boundary:<label>]). *)

val label : t -> string

val to_device : t -> Codec.ty -> Value.t -> Native.t
(** Full host-to-device path: serialize, cross, convert to dense. *)

val to_host : ?streaming:bool -> t -> Native.t -> Value.t
(** Full device-to-host mirror path. [~streaming:true] models the
    return leg of a fused segment's single round trip: the result
    streams back overlapped with compute inside the transfer window
    the inbound crossing opened, so only the bandwidth term is
    charged, not the per-crossing latency. *)

val native_of_value : Codec.ty -> Value.t -> Native.t
(** Device-side packing of a result into the dense wire form, ready
    for {!to_host}. Not counted as a crossing: it happens on the
    device side of the boundary. *)

val transfer_ns : t -> int -> float
(** [transfer_ns t bytes] is the modeled cost of one crossing moving
    [bytes] bytes. *)

val streaming_transfer_ns : t -> int -> float
(** Bandwidth-only cost of a streaming return leg (no per-crossing
    latency); the cost model's mirror of [to_host ~streaming:true]. *)

val stats : t -> stats
val reset_stats : t -> unit
