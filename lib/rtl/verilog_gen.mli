(** Verilog code generation (paper section 3: "generates Verilog for
    the FPGA").

    Synthesizable filters are straight-line code with muxes, so each
    datapath folds into one combinational expression per output,
    reconstructed by symbolic evaluation with full call inlining;
    stateful filters contribute a next-value expression per field
    register. Floating-point operators appear as [fadd]/[fmul]/...
    function references (vendor FP cores).

    The module structure matches what {!Sim} executes and Figure 4
    shows: a registered-output FIFO per connection and an unpipelined
    read / compute / publish FSM per filter. *)

module Ir = Lime_ir.Ir

exception Unsynthesizable of string

val pipeline_text : Ir.program -> Netlist.pipeline -> string
(** The complete artifact: the FIFO module, one module per stage, and
    a wired top-level. *)

val filter_module_text : Ir.program -> Netlist.stage -> string

val pipelined_module_text : Ir.program -> Netlist.stage -> string
(** Fully pipelined (initiation interval 1) stage module for fused
    segments: the composed datapath behind a [st_latency]-deep shift
    register of valid/data pairs. Stateless datapaths only.
    @raise Unsynthesizable if the stage has register state. *)

val fifo_module_text : depth:int -> string

val sym_fn : Ir.program -> string -> string list -> string * (int * string) list
(** [sym_fn prog key args] symbolically evaluates a function to its
    result expression text and field next-value updates (exposed for
    tests). @raise Unsynthesizable on unsupported constructs. *)
