(** Behavioral synthesis feasibility, latency estimation, and pipeline
    assembly for the FPGA backend.

    The paper is explicit that its FPGA device compiler is "a work in
    progress" with a narrower feature set (sections 5 and 7); the
    exclusion rules mirror that: scalar port types only, no arrays, no
    loops (no FSM inference), no dynamic allocation, no transcendental
    intrinsics (no FP IP cores). Stateful filters with scalar fields
    are supported — fields become registers. *)

module Ir = Lime_ir.Ir
module I = Lime_ir.Interp

type verdict = Suitable | Excluded of string

type cache
(** Per-program memo of function analyses (verdict and datapath
    depth). Thread one cache through a whole compile so each callee
    is structurally walked once instead of once per enclosing
    subchain; both acceptances and rejections are cached (they are
    call-graph properties, independent of the walk's stack). *)

val make_cache : unit -> cache

val cache_hits : cache -> int
(** How many function analyses were served from the memo. *)

val check_filter :
  ?effects:Analysis.Effects.t ->
  ?cache:cache ->
  Ir.program ->
  Ir.filter_info ->
  verdict
(** [effects] enables early rejection from the interprocedural effect
    summaries before any structural walk — the same locality
    relaxation as the GPU backend (field reads/writes are allowed:
    fields become registers). A clean summary never skips the walk:
    loops, array reads, intrinsics and recursion are structural
    properties, not effects. *)

val latency_of :
  ?effects:Analysis.Effects.t ->
  ?cache:cache ->
  Ir.program ->
  Ir.filter_info ->
  int
(** Compute cycles of the unpipelined stage: the maximum operation
    count along any path, at {!ops_per_cycle} datapath operations per
    clock, minimum 1. *)

val ops_per_cycle : float

val pipeline_of_chain :
  ?effects:Analysis.Effects.t ->
  ?cache:cache ->
  Ir.program ->
  name:string ->
  ?fifo_depth:int ->
  ?pipelined:bool ->
  (Ir.filter_info * I.v option) list ->
  Netlist.pipeline
(** Assemble a pipeline netlist for a chain of suitable filters; the
    optional receiver objects become the stages' register state.
    [~pipelined:true] marks the datapath fully pipelined (initiation
    interval 1) — used for fused single-stage segments, whose composed
    straight-line body registers at every cycle boundary.
    @raise Netlist.Synthesis_error if a filter is excluded. *)
