module Ir = Lime_ir.Ir
module I = Lime_ir.Interp
module V = Wire.Value

type stats = {
  cycles : int;
  items : int;
  stalls : int;
  max_fifo_occupancy : int;
}

exception Simulation_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Simulation_error s)) fmt

(* A hardware FIFO with a registered output: an element written at
   cycle [t] first appears at the output at cycle [t + 1] — "the
   generated logic uses a FIFO which produces a value on the next
   rising edge of the clock" (paper section 5). *)
module Fifo = struct
  type t = {
    depth : int;
    q : (V.t * int) Queue.t;  (* value, cycle it becomes visible *)
  }

  let create depth = { depth; q = Queue.create () }
  let length t = Queue.length t.q
  let has_space t = Queue.length t.q < t.depth

  let push t ~cycle v =
    if not (has_space t) then invalid_arg "Fifo.push: full";
    Queue.push (v, cycle + 1) t.q

  let peek t ~cycle =
    match Queue.peek_opt t.q with
    | Some (v, visible) when visible <= cycle -> Some v
    | Some _ | None -> None

  let pop t = ignore (Queue.pop t.q)
end

(* The unpipelined stage FSM: read (1 cycle), compute (latency
   cycles), publish (1 cycle). *)
type fsm =
  | Idle
  | Computing of V.t * int  (* latched input, remaining cycles *)
  | Publishing of V.t

type stage_state = {
  stage : Netlist.stage;
  mutable fsm : fsm;
  input_fifo : Fifo.t;
  inflight : (V.t * int) Queue.t;
      (* pipelined mode only: results in the stage's pipeline
         registers, with the cycle each becomes publishable *)
  (* waveform vars (None when no VCD requested) *)
  w_in_ready : Vcd.var option;
  w_in_data : Vcd.var option;
  w_out_ready : Vcd.var option;
  w_out_data : Vcd.var option;
}

let apply_filter prog (st : Netlist.stage) (x : V.t) : V.t =
  let args =
    match st.st_state with
    | Some receiver -> [ receiver; I.Prim x ]
    | None -> [ I.Prim x ]
  in
  match I.call prog st.st_fn args with
  | I.Prim v -> v
  | v -> fail "filter %s produced a non-value result %a" st.st_fn I.pp v

let run ?vcd ?(clock_ns = 4) ?(max_cycles = 10_000_000) (prog : Ir.program)
    (pl : Netlist.pipeline) (inputs : V.t list) : V.t list * stats =
  (* Fused pipelines are fault-checked by the engine's launch prelude
     under their pre-fusion alias names — checking the fused uid here
     too would double-charge one launch. *)
  if not (Lime_ir.Fuse.is_fused_uid pl.Netlist.pl_name) then
    Support.Fault.check ~device:"fpga" ~segment:pl.Netlist.pl_name;
  (* Device-model telemetry: one span (category ["fpga"]) per RTL
     simulation, closed with cycle/item/stall counts. *)
  let traced f =
    if not (Support.Trace.enabled ()) then f ()
    else
      let sp = Support.Trace.begin_span ~cat:"fpga" pl.Netlist.pl_name in
      match f () with
      | (_, (st : stats)) as r ->
        Support.Trace.end_span
          ~args:
            [
              "cycles", Support.Trace.Int st.cycles;
              "items", Support.Trace.Int st.items;
              "stalls", Support.Trace.Int st.stalls;
            ]
          sp;
        r
      | exception e ->
        Support.Trace.end_span sp;
        raise e
  in
  traced @@ fun () ->
  let mkvar name width =
    Option.map (fun v -> Vcd.add_var v ~name ~width) vcd
  in
  let clk_var = mkvar "clk" 1 in
  let stages =
    List.map
      (fun (st : Netlist.stage) ->
        {
          stage = st;
          fsm = Idle;
          input_fifo = Fifo.create pl.Netlist.pl_fifo_depth;
          inflight = Queue.create ();
          w_in_ready = mkvar (st.st_name ^ "_inReady") 1;
          w_in_data = mkvar (st.st_name ^ "_inData")
              (Netlist.width_of_ty st.st_input_ty);
          w_out_ready = mkvar (st.st_name ^ "_outReady") 1;
          w_out_data = mkvar (st.st_name ^ "_outData")
              (Netlist.width_of_ty st.st_output_ty);
        })
      pl.Netlist.pl_stages
  in
  let sink_fifo = Fifo.create pl.Netlist.pl_fifo_depth in
  Option.iter Vcd.finalize_header vcd;
  let pending = ref inputs in
  let outputs = ref [] in
  let stalls = ref 0 in
  let max_occ = ref 0 in
  let cycle = ref 0 in
  let vset_at time var v =
    match vcd, var with
    | Some w, Some var -> Vcd.set w ~time_ns:time var v
    | _, _ -> ()
  in
  let vset var v = vset_at (!cycle * clock_ns) var v in
  let downstream_of i =
    if i + 1 < List.length stages then
      (List.nth stages (i + 1)).input_fifo
    else sink_fifo
  in
  let quiescent () =
    !pending = []
    && List.for_all
         (fun s ->
           s.fsm = Idle
           && Fifo.length s.input_fifo = 0
           && Queue.is_empty s.inflight)
         stages
    && Fifo.length sink_fifo = 0
  in
  while not (quiescent ()) do
    if !cycle > max_cycles then fail "pipeline wedged after %d cycles" max_cycles;
    (* rising edge *)
    vset clk_var 1;
    (* Sink drains first so a full FIFO frees within the cycle order
       downstream-to-upstream (registered visibility still enforces the
       one-cycle FIFO delay). *)
    (match Fifo.peek sink_fifo ~cycle:!cycle with
    | Some v ->
      Fifo.pop sink_fifo;
      outputs := v :: !outputs
    | None -> ());
    List.iteri
      (fun i s ->
        let down = downstream_of i in
        (* default waveform levels each cycle *)
        vset s.w_in_ready 0;
        vset s.w_out_ready 0;
        if pl.Netlist.pl_pipelined then begin
          (* Fully pipelined stage (initiation interval 1): publish the
             oldest in-flight result whose latency has elapsed, then
             accept one new element into the pipeline registers. The
             register file holds at most [st_latency + 1] values;
             downstream backpressure stalls acceptance. *)
          (match Queue.peek_opt s.inflight with
          | Some (y, ready) when ready <= !cycle ->
            if Fifo.has_space down then begin
              ignore (Queue.pop s.inflight);
              Fifo.push down ~cycle:!cycle y;
              vset s.w_out_ready 1;
              vset s.w_out_data (Netlist.bits_of_value s.stage.st_output_ty y)
            end
            else incr stalls
          | Some _ | None -> ());
          if Queue.length s.inflight <= s.stage.st_latency then
            match Fifo.peek s.input_fifo ~cycle:!cycle with
            | Some x ->
              Fifo.pop s.input_fifo;
              vset s.w_in_ready 1;
              vset s.w_in_data (Netlist.bits_of_value s.stage.st_input_ty x);
              Queue.push
                (apply_filter prog s.stage x, !cycle + s.stage.st_latency)
                s.inflight
            | None -> ()
        end
        else
        match s.fsm with
        | Publishing y ->
          if Fifo.has_space down then begin
            Fifo.push down ~cycle:!cycle y;
            vset s.w_out_ready 1;
            vset s.w_out_data (Netlist.bits_of_value s.stage.st_output_ty y);
            s.fsm <- Idle
          end
          else incr stalls
        | Computing (x, remaining) ->
          if remaining > 1 then s.fsm <- Computing (x, remaining - 1)
          else s.fsm <- Publishing (apply_filter prog s.stage x)
        | Idle -> (
          match Fifo.peek s.input_fifo ~cycle:!cycle with
          | Some x ->
            Fifo.pop s.input_fifo;
            vset s.w_in_ready 1;
            vset s.w_in_data (Netlist.bits_of_value s.stage.st_input_ty x);
            s.fsm <- Computing (x, s.stage.st_latency)
          | None -> ()))
      stages;
    (* Source feeds the first stage, one element per cycle. *)
    (match stages, !pending with
    | first :: _, x :: rest ->
      if Fifo.has_space first.input_fifo then begin
        Fifo.push first.input_fifo ~cycle:!cycle x;
        pending := rest
      end
    | _, [] | [], _ -> ());
    List.iter
      (fun s -> max_occ := max !max_occ (Fifo.length s.input_fifo))
      stages;
    max_occ := max !max_occ (Fifo.length sink_fifo);
    (* falling edge *)
    vset_at ((!cycle * clock_ns) + (clock_ns / 2)) clk_var 0;
    incr cycle
  done;
  ( List.rev !outputs,
    {
      cycles = !cycle;
      items = List.length !outputs;
      stalls = !stalls;
      max_fifo_occupancy = !max_occ;
    } )
