module Ir = Lime_ir.Ir
module I = Lime_ir.Interp
module V = Wire.Value

(* Structural description of a synthesized task pipeline.

   The FPGA backend turns each relocatable filter into a hardware
   module with a FIFO on its input, exactly the structure visible in
   the paper's Figure 4 waveform: "the generated logic uses a FIFO
   which produces a value on the next rising edge of the clock", and
   the unpipelined module takes "one cycle to read, one cycle to
   compute, and one cycle to publish the result". *)

exception Synthesis_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Synthesis_error s)) fmt

(* --- scalar <-> bit-vector encodings ------------------------------- *)

let width_of_ty = function
  | Ir.Bit | Ir.Bool -> 1
  | Ir.I32 -> 32
  | Ir.F32 -> 32
  | Ir.Enum _ -> 8
  | (Ir.Arr _ | Ir.Obj _ | Ir.Graph | Ir.Unit) as t ->
    fail "type %s has no hardware representation" (Ir.ty_to_string t)

let bits_of_value (ty : Ir.ty) (v : V.t) : int =
  match ty, v with
  | Ir.Bit, V.Bit b -> if b then 1 else 0
  | Ir.Bool, V.Bool b -> if b then 1 else 0
  | Ir.I32, V.Int i -> i land 0xffffffff
  | Ir.F32, V.Float f -> Int32.to_int (Int32.bits_of_float f) land 0xffffffff
  | Ir.Enum _, V.Enum { tag; _ } -> tag land 0xff
  | _ -> fail "cannot encode %s as %s bits" (V.type_name v) (Ir.ty_to_string ty)

let value_of_bits (ty : Ir.ty) (bits : int) : V.t =
  match ty with
  | Ir.Bit -> V.Bit (bits land 1 = 1)
  | Ir.Bool -> V.Bool (bits land 1 = 1)
  | Ir.I32 -> V.Int (V.norm32 bits)
  | Ir.F32 -> V.Float (Int32.float_of_bits (Int32.of_int bits))
  | Ir.Enum e -> V.Enum { enum = e; tag = bits land 0xff }
  | Ir.Arr _ | Ir.Obj _ | Ir.Graph | Ir.Unit ->
    fail "type %s has no hardware representation" (Ir.ty_to_string ty)

(* --- pipeline structure --------------------------------------------- *)

type stage = {
  st_name : string;  (** instance name, e.g. ["flip_0"] *)
  st_uid : string;  (** the task UID this module implements *)
  st_fn : string;  (** filter function key *)
  st_state : I.v option;  (** receiver object for stateful filters *)
  st_latency : int;  (** compute cycles (>= 1) *)
  st_input_ty : Ir.ty;
  st_output_ty : Ir.ty;
  st_in_width : int;
      (** data-port width in bits; at most [width_of_ty st_input_ty],
          narrower when the range analysis bounds the values *)
  st_out_width : int;
}

type pipeline = {
  pl_name : string;
  pl_stages : stage list;
  pl_input_ty : Ir.ty;
  pl_output_ty : Ir.ty;
  pl_fifo_depth : int;
  pl_pipelined : bool;
      (** fully pipelined datapath: each stage accepts a new element
          every cycle (initiation interval 1) and results emerge
          [st_latency] cycles later — the fused-segment configuration.
          [false] is the paper's unpipelined read/compute/publish FSM. *)
}

let input_ty pl = pl.pl_input_ty
let output_ty pl = pl.pl_output_ty
