module Ir = Lime_ir.Ir
module I = Lime_ir.Interp

(** Clocked simulation of synthesized pipelines.

    Reproduces the behaviour visible in the paper's Figure 4 waveform:
    each stage's FIFO produces a value on the next rising clock edge
    after it is written, and an unpipelined stage spends one cycle
    reading, [st_latency] cycles computing and one cycle publishing.

    A pipeline marked [pl_pipelined] (fused segments) instead runs
    each stage at initiation interval 1: one element enters the
    pipeline registers every cycle and its result is publishable
    [st_latency] cycles later, so a stream of [n] elements drains in
    roughly [n + st_latency] cycles instead of [n * (st_latency + 2)].

    Passing a {!Vcd.t} records [clk], and per stage [<name>_inReady],
    [<name>_inData], [<name>_outReady], [<name>_outData], so the run
    can be inspected in a standard waveform viewer. *)

type stats = {
  cycles : int;  (** total clock cycles until the pipeline drained *)
  items : int;  (** elements that reached the sink *)
  stalls : int;  (** publish attempts blocked on a full FIFO *)
  max_fifo_occupancy : int;
}

exception Simulation_error of string

val run :
  ?vcd:Vcd.t ->
  ?clock_ns:int ->
  ?max_cycles:int ->
  Ir.program ->
  Netlist.pipeline ->
  Wire.Value.t list ->
  Wire.Value.t list * stats
(** [run prog pipeline inputs] streams every input element through the
    pipeline and returns the sink outputs in order.
    @raise Simulation_error on a wedged pipeline (deadlock /
    [max_cycles] exceeded, default 10 million). *)
