module Ir = Lime_ir.Ir
module I = Lime_ir.Interp

(* Behavioral synthesis: deciding which filters the FPGA backend can
   implement, estimating their compute latency, and assembling
   pipelines.

   The paper is explicit that its FPGA device compiler is "a work in
   progress" with a narrower feature set than the GPU backend
   (sections 5 and 7); our exclusion rules mirror that: scalar port
   types only, no arrays, no unbounded loops (no FSM inference yet),
   no dynamic allocation. Stateful filters with scalar fields are
   allowed — fields become registers. *)

type verdict = Suitable | Excluded of string

exception Unsuitable of string

let reject fmt = Format.kasprintf (fun s -> raise (Unsuitable s)) fmt

let scalar_ty = Ir.scalar_ty

(* Per-program memo of function analyses. The verdict and datapath
   depth of a function are properties of the call graph alone (a
   recursion rejection means the function is on a cycle, which is
   stack-independent), so both successes and failures are safe to
   cache. The compiler driver threads one cache through the whole
   FPGA backend, so each callee is walked once per compile instead of
   once per enclosing subchain. *)
type cache = {
  c_results : (string, (float, string) result) Hashtbl.t;
  mutable c_hits : int;
}

let make_cache () = { c_results = Hashtbl.create 32; c_hits = 0 }
let cache_hits c = c.c_hits

(* Early rejection from the interprocedural effect summaries
   ([Analysis.Effects]) before any structural walk — the same
   relaxation the GPU backend applies: what matters is what the
   function provably does, not its declared locality. Field reads and
   writes are the one effect pair the FPGA allows (fields become
   registers). This is only a fast negative: a pure function can
   still be structurally unsynthesizable (loops, array reads,
   intrinsics, recursion), so a clean summary does not skip the walk
   — the [cache] is what skips re-walks. *)
let effect_reject summaries key =
  List.iter
    (fun (w : Analysis.Effects.witness) ->
      match w.Analysis.Effects.w_effect with
      | Analysis.Effects.Reads_field _ | Analysis.Effects.Writes_field _ -> ()
      | Analysis.Effects.Writes_array -> reject "array stores are not synthesizable"
      | Analysis.Effects.Allocates_array | Analysis.Effects.Freezes_array ->
        reject "dynamic allocation on the FPGA"
      | Analysis.Effects.Allocates _ -> reject "object allocation on the FPGA"
      | Analysis.Effects.Nested_parallel ->
        reject "nested data parallelism on the FPGA"
      | Analysis.Effects.Builds_graph | Analysis.Effects.Runs_graph ->
        reject "nested task graphs are not synthesizable"
      | Analysis.Effects.Calls_unknown f -> reject "unknown function %s" f)
    (Analysis.Effects.summary summaries key)

(* Walk a function (inlining callees) verifying synthesizability and
   computing the maximum operation count along any path — the datapath
   depth that determines compute latency. *)
let rec analyze_fn (prog : Ir.program) ?effects ?cache ~stack (key : string) :
    float =
  if Lime_ir.Intrinsics.is_intrinsic key then
    reject "%s needs a floating-point IP core (transcendental intrinsics \
            are beyond the work-in-progress FPGA backend)" key;
  if List.mem key stack then reject "%s is recursive" key;
  let compute () =
    (match effects with Some s -> effect_reject s key | None -> ());
    match Ir.find_func prog key with
    | None -> reject "unknown function %s" key
    | Some fn ->
      (* locality is no constraint here: a global function that passes
         the structural checks below has no way left to perform an
         unsynthesizable effect *)
      List.iter
        (fun (p : Ir.var) ->
          match p.v_ty with
          | t when scalar_ty t -> ()
          | Ir.Obj _ when fn.fn_kind <> Ir.K_static -> ()
            (* the receiver of a stateful filter is the register file *)
          | t ->
            reject "%s: port type %s not synthesizable" key (Ir.ty_to_string t))
        fn.fn_params;
      analyze_block prog ?effects ?cache ~stack:(key :: stack) fn.fn_body
  in
  match cache with
  | None -> compute ()
  | Some c -> (
    match Hashtbl.find_opt c.c_results key with
    | Some (Ok ops) ->
      c.c_hits <- c.c_hits + 1;
      ops
    | Some (Error reason) ->
      c.c_hits <- c.c_hits + 1;
      raise (Unsuitable reason)
    | None -> (
      match compute () with
      | ops ->
        Hashtbl.replace c.c_results key (Ok ops);
        ops
      | exception Unsuitable reason ->
        Hashtbl.replace c.c_results key (Error reason);
        raise (Unsuitable reason)))

and analyze_block prog ?effects ?cache ~stack (b : Ir.block) : float =
  List.fold_left
    (fun acc i -> acc +. analyze_instr prog ?effects ?cache ~stack i)
    0.0 b

and analyze_instr prog ?effects ?cache ~stack (i : Ir.instr) : float =
  match i with
  | Ir.I_let (_, r) | Ir.I_set (_, r) | Ir.I_do r ->
    analyze_rhs prog ?effects ?cache ~stack r
  | Ir.I_astore _ -> reject "array stores are not synthesizable"
  | Ir.I_setfield _ -> 1.0  (* register write *)
  | Ir.I_if (_, a, b) ->
    (* A mux: both sides are elaborated; latency is the deeper path. *)
    1.0
    +. Float.max
         (analyze_block prog ?effects ?cache ~stack a)
         (analyze_block prog ?effects ?cache ~stack b)
  | Ir.I_while _ ->
    reject "loops need FSM inference (FPGA backend work in progress)"
  | Ir.I_return _ -> 0.0
  | Ir.I_run_graph _ -> reject "nested task graphs are not synthesizable"

and analyze_rhs prog ?effects ?cache ~stack (r : Ir.rhs) : float =
  match r with
  | Ir.R_op _ -> 0.0
  | Ir.R_unop _ -> 1.0
  | Ir.R_binop ((Ir.Div_i | Ir.Rem_i | Ir.Div_f | Ir.Rem_f), _, _) -> 8.0
  | Ir.R_binop ((Ir.Mul_i | Ir.Mul_f), _, _) -> 2.0
  | Ir.R_binop (_, _, _) -> 1.0
  | Ir.R_alen _ | Ir.R_aload _ -> reject "array access is not synthesizable"
  | Ir.R_call (key, _) -> 1.0 +. analyze_fn prog ?effects ?cache ~stack key
  | Ir.R_field _ -> 0.5  (* register read *)
  | Ir.R_newarr _ | Ir.R_freeze _ -> reject "dynamic allocation on the FPGA"
  | Ir.R_newobj _ -> reject "object allocation on the FPGA"
  | Ir.R_map _ | Ir.R_reduce _ -> reject "nested data parallelism on the FPGA"
  | Ir.R_mkgraph _ -> reject "nested task graphs are not synthesizable"

let check_filter ?effects ?cache (prog : Ir.program) (f : Ir.filter_info) :
    verdict =
  let key =
    match f.target with
    | Ir.F_static key -> key
    | Ir.F_instance (cls, m) -> cls ^ "." ^ m
  in
  match
    if not (scalar_ty f.input) then
      reject "input port %s is not scalar" (Ir.ty_to_string f.input)
    else if not (scalar_ty f.output) then
      reject "output port %s is not scalar" (Ir.ty_to_string f.output)
    else ignore (analyze_fn prog ?effects ?cache ~stack:[] key)
  with
  | () -> Suitable
  | exception Unsuitable reason -> Excluded reason

(* Datapath operations per clock cycle at the target frequency. *)
let ops_per_cycle = 4.0

let latency_of ?effects ?cache prog (f : Ir.filter_info) : int =
  let key =
    match f.target with
    | Ir.F_static key -> key
    | Ir.F_instance (cls, m) -> cls ^ "." ^ m
  in
  let ops = analyze_fn prog ?effects ?cache ~stack:[] key in
  max 1 (int_of_float (ceil (ops /. ops_per_cycle)))

(* Data-port width: the declared type's width, narrowed when the range
   analysis proves the values fit fewer bits. Only I32 ports can
   narrow — Bit/Bool/Enum widths are already tight and F32 is an
   opaque bit pattern. *)
let port_width (ty : Ir.ty) (itv : Analysis.Interval.t) =
  let type_width = Netlist.width_of_ty ty in
  match ty with
  | Ir.I32 -> (
    match Analysis.Interval.width itv with
    | Some w -> max 1 (min type_width w)
    | None -> type_width)
  | _ -> type_width

(* Build a pipeline netlist for a chain of suitable filters. Instance
   receivers (register state) are supplied by the runtime at
   substitution time. Value intervals flow stage to stage, so a
   narrowing filter (say [x & 255]) shrinks every downstream wire. *)
let pipeline_of_chain ?effects ?cache (prog : Ir.program) ~name
    ?(fifo_depth = 2) ?(pipelined = false)
    (filters : (Ir.filter_info * I.v option) list) : Netlist.pipeline =
  if filters = [] then Netlist.fail "empty filter chain";
  List.iteri
    (fun _i (f, _) ->
      match check_filter ?effects ?cache prog f with
      | Suitable -> ()
      | Excluded reason -> Netlist.fail "filter %s excluded: %s" f.Ir.uid reason)
    filters;
  let first_input =
    match filters with ((f : Ir.filter_info), _) :: _ -> f.input | [] -> Ir.Unit
  in
  let rev_stages, _, _ =
    List.fold_left
      (fun (acc, in_itv, i) ((f : Ir.filter_info), state) ->
        let key =
          match f.target with
          | Ir.F_static key -> key
          | Ir.F_instance (cls, m) -> cls ^ "." ^ m
        in
        let args =
          match Ir.find_func prog key with
          | Some fn when fn.Ir.fn_kind <> Ir.K_static ->
            [ Analysis.Interval.top; in_itv ]
          | _ -> [ in_itv ]
        in
        let out_itv = Analysis.Range.return_interval prog key ~args in
        let stage =
          {
            Netlist.st_name = Printf.sprintf "%s_%d" (String.map (fun c ->
              if c = '.' || c = '@' || c = '/' then '_' else c) key) i;
            st_uid = f.uid;
            st_fn = key;
            st_state = state;
            st_latency = latency_of ?effects ?cache prog f;
            st_input_ty = f.input;
            st_output_ty = f.output;
            st_in_width = port_width f.input in_itv;
            st_out_width = port_width f.output out_itv;
          }
        in
        stage :: acc, out_itv, i + 1)
      ([], Analysis.Range.of_ty prog first_input, 0)
      filters
  in
  let stages = List.rev rev_stages in
  let first = List.hd stages in
  let last = List.nth stages (List.length stages - 1) in
  {
    Netlist.pl_name = name;
    pl_stages = stages;
    pl_input_ty = first.Netlist.st_input_ty;
    pl_output_ty = last.Netlist.st_output_ty;
    pl_fifo_depth = fifo_depth;
    pl_pipelined = pipelined;
  }
