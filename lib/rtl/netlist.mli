(** Structural description of synthesized task pipelines.

    The FPGA backend turns each relocatable filter into a hardware
    stage with a FIFO on its input — exactly the structure in the
    paper's Figure 4 waveform: the FIFO "produces a value on the next
    rising edge of the clock" and the unpipelined stage takes one
    cycle to read, [st_latency] to compute, one to publish. *)

module Ir = Lime_ir.Ir
module I = Lime_ir.Interp
module V = Wire.Value

exception Synthesis_error of string

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Synthesis_error} with a formatted message. *)

(** {2 Scalar <-> bit-vector encodings} *)

val width_of_ty : Ir.ty -> int
(** Hardware width: bit/bool 1, int/float 32, enum 8.
    @raise Synthesis_error for types with no hardware representation. *)

val bits_of_value : Ir.ty -> V.t -> int
val value_of_bits : Ir.ty -> int -> V.t

(** {2 Pipeline structure} *)

type stage = {
  st_name : string;  (** instance name, e.g. ["flip_0"] *)
  st_uid : string;  (** the task UID this module implements *)
  st_fn : string;  (** filter function key *)
  st_state : I.v option;  (** receiver object for stateful filters *)
  st_latency : int;  (** compute cycles (>= 1) *)
  st_input_ty : Ir.ty;
  st_output_ty : Ir.ty;
  st_in_width : int;
      (** data-port width in bits; at most [width_of_ty st_input_ty],
          narrower when the range analysis bounds the values *)
  st_out_width : int;
}

type pipeline = {
  pl_name : string;
  pl_stages : stage list;
  pl_input_ty : Ir.ty;
  pl_output_ty : Ir.ty;
  pl_fifo_depth : int;
  pl_pipelined : bool;
      (** fully pipelined datapath: each stage accepts a new element
          every cycle (initiation interval 1) and results emerge
          [st_latency] cycles later — the fused-segment configuration.
          [false] is the paper's unpipelined read/compute/publish FSM. *)
}

val input_ty : pipeline -> Ir.ty
val output_ty : pipeline -> Ir.ty
