module Ir = Lime_ir.Ir

(* Verilog code generation.

   "the latter generates Verilog for the FPGA ... subsequently
   compiled using device-specific toolflows" (paper section 3). The
   generated text is the artifact recorded in the manifest; execution
   in this environment happens in [Sim], which models the same
   module structure (FIFO + unpipelined read/compute/publish FSM).

   Synthesizable filters are straight-line code with muxes (Synth
   rejects everything else), so the whole datapath folds into one
   combinational expression per output: we reconstruct it by symbolic
   evaluation with full call inlining. Stateful filters contribute one
   next-value expression per field register. *)

exception Unsynthesizable of string

let fail fmt = Format.kasprintf (fun s -> raise (Unsynthesizable s)) fmt

let sanitize key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    key

let width_of_ty = Netlist.width_of_ty

(* --- symbolic evaluation ------------------------------------------- *)

type env = {
  vars : (int * string) list;  (* v_id -> expression text *)
  fields : (int * string) list;  (* slot -> next-value expression *)
}

let lookup_var env id =
  match List.assoc_opt id env.vars with
  | Some e -> e
  | None -> fail "use of undefined register v%d" id

let set_var env id e = { env with vars = (id, e) :: List.remove_assoc id env.vars }

let set_field env slot e =
  { env with fields = (slot, e) :: List.remove_assoc slot env.fields }

let const_text (c : Ir.const) =
  match c with
  | Ir.C_unit -> "0"
  | Ir.C_bool b | Ir.C_bit b -> if b then "1'b1" else "1'b0"
  | Ir.C_i32 i -> Printf.sprintf "32'sd%d" (abs i) |> fun s ->
    if i < 0 then "-" ^ s else s
  | Ir.C_f32 f ->
    Printf.sprintf "32'h%08lx /* %g */" (Int32.bits_of_float f) f
  | Ir.C_enum (_, tag) -> Printf.sprintf "8'd%d" tag
  | Ir.C_bits _ -> fail "bit-array literal in a datapath"

let unop_text (u : Ir.unop) a =
  match u with
  | Ir.Neg_i -> Printf.sprintf "(-%s)" a
  | Ir.Neg_f -> Printf.sprintf "fneg(%s)" a
  | Ir.Not_b -> Printf.sprintf "(~%s)" a
  | Ir.Bnot_i -> Printf.sprintf "(~%s)" a
  | Ir.I2f -> Printf.sprintf "itof(%s)" a

let binop_text (b : Ir.binop) x y =
  let infix op = Printf.sprintf "(%s %s %s)" x op y in
  let fp name = Printf.sprintf "%s(%s, %s)" name x y in
  match b with
  | Ir.Add_i -> infix "+"
  | Ir.Sub_i -> infix "-"
  | Ir.Mul_i -> infix "*"
  | Ir.Div_i -> infix "/"
  | Ir.Rem_i -> infix "%"
  | Ir.Add_f -> fp "fadd"
  | Ir.Sub_f -> fp "fsub"
  | Ir.Mul_f -> fp "fmul"
  | Ir.Div_f -> fp "fdiv"
  | Ir.Rem_f -> fp "fmod"
  | Ir.Shl_i -> infix "<<<"
  | Ir.Shr_i -> infix ">>>"
  | Ir.And_i | Ir.And_b | Ir.And_bit -> infix "&"
  | Ir.Or_i | Ir.Or_b | Ir.Or_bit -> infix "|"
  | Ir.Xor_i | Ir.Xor_b | Ir.Xor_bit -> infix "^"
  | Ir.Eq -> infix "=="
  | Ir.Neq -> infix "!="
  | Ir.Lt_i -> infix "<"
  | Ir.Leq_i -> infix "<="
  | Ir.Gt_i -> infix ">"
  | Ir.Geq_i -> infix ">="
  | Ir.Lt_f -> fp "flt"
  | Ir.Leq_f -> fp "fleq"
  | Ir.Gt_f -> fp "fgt"
  | Ir.Geq_f -> fp "fgeq"

type outcome =
  | Returned of string  (* every path returned this expression *)
  | Fell_through of env  (* no path returned; updated bindings *)

let rec sym_fn (prog : Ir.program) (key : string) (args : string list) : string
    * (int * string) list =
  (* Returns the result expression and field next-value updates the
     call performs (for stateful filters, on its own receiver). *)
  let fn =
    match Ir.find_func prog key with
    | Some f -> f
    | None -> fail "unknown function %s" key
  in
  let env =
    {
      vars =
        List.map2 (fun (p : Ir.var) a -> p.v_id, a) fn.fn_params args;
      fields = [];
    }
  in
  match sym_block prog env fn.fn_body with
  | Returned e, env -> e, env.fields
  | Fell_through env, _ when fn.fn_ret = Ir.Unit -> "0", env.fields
  | Fell_through _, _ -> fail "%s does not return on every path" key

and sym_block prog env (b : Ir.block) : outcome * env =
  match b with
  | [] -> Fell_through env, env
  | i :: rest -> (
    match sym_instr prog env i with
    | Returned e, env -> Returned e, env
    | Fell_through env, _ -> sym_block prog env rest)

and sym_instr prog env (i : Ir.instr) : outcome * env =
  match i with
  | Ir.I_let (v, r) | Ir.I_set (v, r) ->
    let e, env = sym_rhs prog env r in
    let env = set_var env v.Ir.v_id e in
    Fell_through env, env
  | Ir.I_setfield (_, slot, x) ->
    let env = set_field env slot (sym_operand env x) in
    Fell_through env, env
  | Ir.I_if (c, a, b) -> (
    let c = sym_operand env c in
    let oa, _ = sym_block prog env a in
    let ob, _ = sym_block prog env b in
    match oa, ob with
    | Returned ea, Returned eb ->
      Returned (Printf.sprintf "(%s ? %s : %s)" c ea eb), env
    | Fell_through ea, Fell_through eb ->
      (* Merge: any binding touched in either branch becomes a mux. *)
      let merge get set base keys =
        List.fold_left
          (fun acc k ->
            let va = get ea k and vb = get eb k in
            match va, vb with
            | Some x, Some y when x = y -> set acc k x
            | Some x, Some y -> set acc k (Printf.sprintf "(%s ? %s : %s)" c x y)
            | Some x, None ->
              set acc k (Printf.sprintf "(%s ? %s : %s)" c x
                   (Option.value (get base k) ~default:x))
            | None, Some y ->
              set acc k (Printf.sprintf "(%s ? %s : %s)" c
                   (Option.value (get base k) ~default:y) y)
            | None, None -> acc)
          base keys
      in
      let var_keys =
        List.sort_uniq compare
          (List.map fst ea.vars @ List.map fst eb.vars)
      in
      let field_keys =
        List.sort_uniq compare
          (List.map fst ea.fields @ List.map fst eb.fields)
      in
      let env =
        merge
          (fun e k -> List.assoc_opt k e.vars)
          (fun env k v -> set_var env k v)
          env var_keys
      in
      let env =
        merge
          (fun e k -> List.assoc_opt k e.fields)
          (fun env k v -> set_field env k v)
          env field_keys
      in
      Fell_through env, env
    | _ ->
      fail "mixed return/fall-through branches are not synthesizable")
  | Ir.I_return (Some o) -> Returned (sym_operand env o), env
  | Ir.I_return None -> Returned "0", env
  | Ir.I_do r ->
    let _, env = sym_rhs prog env r in
    Fell_through env, env
  | Ir.I_astore _ | Ir.I_while _ | Ir.I_run_graph _ ->
    fail "construct rejected by synthesis feasibility analysis"

and sym_operand env (o : Ir.operand) =
  match o with
  | Ir.O_var v -> lookup_var env v.Ir.v_id
  | Ir.O_const c -> const_text c

and sym_rhs prog env (r : Ir.rhs) : string * env =
  match r with
  | Ir.R_op o -> sym_operand env o, env
  | Ir.R_unop (u, a) -> unop_text u (sym_operand env a), env
  | Ir.R_binop (b, x, y) ->
    binop_text b (sym_operand env x) (sym_operand env y), env
  | Ir.R_field (_, slot) -> (
    (* Reads see any pending write in this activation. *)
    match List.assoc_opt slot env.fields with
    | Some e -> e, env
    | None -> Printf.sprintf "field_%d" slot, env)
  | Ir.R_call (key, args) ->
    let args = List.map (sym_operand env) args in
    (* Instance calls pass the receiver as arg 0; receiver state is the
       module's own register file, so drop the handle and import the
       callee's field updates. *)
    let fn =
      match Ir.find_func prog key with
      | Some f -> f
      | None -> fail "unknown function %s" key
    in
    (* Enum methods receive their receiver as an ordinary data value;
       class-instance methods act on the module's own register file
       (the receiver handle is structural, not a datapath value). *)
    let args =
      match fn.fn_kind with
      | Ir.K_instance cls | Ir.K_ctor cls
        when Ir.String_map.mem cls prog.Ir.classes -> (
        match args with _ :: rest -> "<this>" :: rest | [] -> args)
      | Ir.K_instance _ | Ir.K_ctor _ | Ir.K_static -> args
    in
    let e, field_updates = sym_fn prog key args in
    let env =
      List.fold_left (fun env (slot, e) -> set_field env slot e) env
        field_updates
    in
    e, env
  | Ir.R_alen _ | Ir.R_aload _ | Ir.R_newarr _ | Ir.R_freeze _
  | Ir.R_newobj _ | Ir.R_map _ | Ir.R_reduce _ | Ir.R_mkgraph _ ->
    fail "construct rejected by synthesis feasibility analysis"

(* --- module text ----------------------------------------------------- *)

let filter_module_text (prog : Ir.program) (st : Netlist.stage) : string =
  (* Port widths come from the netlist stage: the declared type's
     width, or narrower when the range analysis proved a bound. *)
  let in_w = st.st_in_width in
  let out_w = st.st_out_width in
  let fn =
    match Ir.find_func prog st.st_fn with
    | Some f -> f
    | None -> fail "unknown filter function %s" st.st_fn
  in
  let fields =
    match fn.fn_kind with
    | Ir.K_instance cls -> (
      match Ir.String_map.find_opt cls prog.classes with
      | Some meta -> meta.cm_fields
      | None -> [])
    | Ir.K_static | Ir.K_ctor _ -> []
  in
  let args =
    match fn.fn_kind with
    | Ir.K_instance _ -> [ "<this>"; "in_data_typed" ]
    | Ir.K_static | Ir.K_ctor _ -> [ "in_data_typed" ]
  in
  let result_expr, field_updates = sym_fn prog st.st_fn args in
  let field_regs =
    String.concat ""
      (List.mapi
         (fun slot (name, ty) ->
           Printf.sprintf "  reg [%d:0] field_%d; // %s\n"
             (width_of_ty ty - 1) slot name)
         fields)
  in
  let field_commits =
    String.concat ""
      (List.filter_map
         (fun (slot, e) ->
           Some (Printf.sprintf "          field_%d <= %s;\n" slot e))
         field_updates)
  in
  Printf.sprintf
    "// Task %s (filter %s), generated by the Liquid Metal FPGA backend.\n\
     // Unpipelined: one cycle to read, %d to compute, one to publish.\n\
     module %s (\n\
    \  input  wire clk,\n\
    \  input  wire rst,\n\
    \  input  wire in_valid,\n\
    \  input  wire [%d:0] in_data,\n\
    \  output wire in_ready,\n\
    \  output reg  out_valid,\n\
    \  output reg  [%d:0] out_data,\n\
    \  input  wire out_ready\n\
     );\n\
    \  localparam IDLE = 2'd0, COMPUTE = 2'd1, PUBLISH = 2'd2;\n\
    \  reg [1:0] state;\n\
    \  reg [%d:0] latched;\n\
    \  reg [7:0] count;\n\
     %s\
    \  wire [%d:0] in_data_typed = in_data;\n\
    \  wire [%d:0] result = %s;\n\
    \  assign in_ready = (state == IDLE);\n\
    \  always @(posedge clk) begin\n\
    \    if (rst) begin\n\
    \      state <= IDLE; out_valid <= 1'b0; count <= 8'd0;\n\
    \    end else begin\n\
    \      out_valid <= 1'b0;\n\
    \      case (state)\n\
    \        IDLE: if (in_valid) begin\n\
    \          latched <= in_data;\n\
    \          count <= 8'd%d;\n\
    \          state <= COMPUTE;\n\
    \        end\n\
    \        COMPUTE: if (count <= 8'd1) begin\n\
    \          out_data <= result;\n\
     %s\
    \          state <= PUBLISH;\n\
    \        end else count <= count - 8'd1;\n\
    \        PUBLISH: if (out_ready) begin\n\
    \          out_valid <= 1'b1;\n\
    \          state <= IDLE;\n\
    \        end\n\
    \      endcase\n\
    \    end\n\
    \  end\n\
     endmodule\n"
    st.st_uid st.st_fn st.st_latency (sanitize st.st_name) (in_w - 1)
    (out_w - 1) (in_w - 1) field_regs (in_w - 1) (out_w - 1) result_expr
    st.st_latency field_commits

(* Fully pipelined variant for fused segments: the composed datapath
   registers at every cycle boundary (a [st_latency]-deep shift
   register of valid/data pairs), so the module accepts a new element
   every cycle — initiation interval 1 — and the result emerges
   [st_latency] cycles later. *)
let pipelined_module_text (prog : Ir.program) (st : Netlist.stage) : string =
  let in_w = st.st_in_width in
  let out_w = st.st_out_width in
  let depth = max 1 st.st_latency in
  let result_expr, field_updates = sym_fn prog st.st_fn [ "in_data_typed" ] in
  if field_updates <> [] then
    fail "pipelined module %s has register state" st.st_fn;
  Printf.sprintf
    "// Task %s (fused filter %s), generated by the Liquid Metal FPGA \
     backend.\n\
     // Fully pipelined: initiation interval 1, latency %d cycles.\n\
     module %s (\n\
    \  input  wire clk,\n\
    \  input  wire rst,\n\
    \  input  wire in_valid,\n\
    \  input  wire [%d:0] in_data,\n\
    \  output wire in_ready,\n\
    \  output wire out_valid,\n\
    \  output wire [%d:0] out_data,\n\
    \  input  wire out_ready\n\
     );\n\
    \  wire [%d:0] in_data_typed = in_data;\n\
    \  wire [%d:0] result = %s;\n\
    \  reg  [%d:0] stage_data [0:%d];\n\
    \  reg  [%d:0] stage_valid;\n\
    \  integer k;\n\
    \  assign in_ready = out_ready;\n\
    \  always @(posedge clk) begin\n\
    \    if (rst) stage_valid <= 0;\n\
    \    else if (out_ready) begin\n\
    \      stage_data[0] <= result;\n\
    \      stage_valid[0] <= in_valid;\n\
    \      for (k = 1; k < %d; k = k + 1) begin\n\
    \        stage_data[k] <= stage_data[k-1];\n\
    \        stage_valid[k] <= stage_valid[k-1];\n\
    \      end\n\
    \    end\n\
    \  end\n\
    \  assign out_valid = stage_valid[%d];\n\
    \  assign out_data = stage_data[%d];\n\
     endmodule\n"
    st.st_uid st.st_fn depth (sanitize st.st_name) (in_w - 1) (out_w - 1)
    (in_w - 1) (out_w - 1) result_expr (out_w - 1) (depth - 1) (depth - 1)
    depth (depth - 1) (depth - 1)

(* The standard FIFO whose output registers on the next rising edge. *)
let fifo_module_text ~depth =
  Printf.sprintf
    "// Depth-%d FIFO with registered output: a value written at cycle t\n\
     // is visible at the output at cycle t+1 (Figure 4 behaviour).\n\
     module lm_fifo #(parameter W = 32, parameter DEPTH = %d) (\n\
    \  input  wire clk,\n\
    \  input  wire rst,\n\
    \  input  wire wr_en,\n\
    \  input  wire [W-1:0] wr_data,\n\
    \  output wire full,\n\
    \  input  wire rd_en,\n\
    \  output reg  [W-1:0] rd_data,\n\
    \  output reg  rd_valid\n\
     );\n\
    \  reg [W-1:0] mem [0:DEPTH-1];\n\
    \  reg [$clog2(DEPTH):0] count;\n\
    \  reg [$clog2(DEPTH)-1:0] rd_ptr, wr_ptr;\n\
    \  assign full = (count == DEPTH);\n\
    \  always @(posedge clk) begin\n\
    \    if (rst) begin count <= 0; rd_ptr <= 0; wr_ptr <= 0; rd_valid <= 0; end\n\
    \    else begin\n\
    \      if (wr_en && !full) begin mem[wr_ptr] <= wr_data; wr_ptr <= wr_ptr + 1; end\n\
    \      rd_valid <= (count != 0);\n\
    \      rd_data <= mem[rd_ptr];\n\
    \      if (rd_en && count != 0) rd_ptr <= rd_ptr + 1;\n\
    \      count <= count + (wr_en && !full) - (rd_en && count != 0);\n\
    \    end\n\
    \  end\n\
     endmodule\n"
    depth depth

let pipeline_text (prog : Ir.program) (pl : Netlist.pipeline) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "// Pipeline %s: %d stage(s), generated by the Liquid Metal FPGA \
        backend.\n\
        // Floating-point operators (fadd/fmul/...) reference vendor FP \
        cores.\n\n"
       pl.Netlist.pl_name
       (List.length pl.Netlist.pl_stages));
  Buffer.add_string buf (fifo_module_text ~depth:pl.Netlist.pl_fifo_depth);
  Buffer.add_char buf '\n';
  List.iter
    (fun st ->
      Buffer.add_string buf
        (if pl.Netlist.pl_pipelined then pipelined_module_text prog st
         else filter_module_text prog st);
      Buffer.add_char buf '\n')
    pl.Netlist.pl_stages;
  (* top-level wiring *)
  let stage_arr = Array.of_list pl.Netlist.pl_stages in
  let w_in =
    if Array.length stage_arr > 0 then stage_arr.(0).Netlist.st_in_width
    else width_of_ty pl.Netlist.pl_input_ty
  in
  let w_out =
    if Array.length stage_arr > 0 then
      stage_arr.(Array.length stage_arr - 1).Netlist.st_out_width
    else width_of_ty pl.Netlist.pl_output_ty
  in
  Buffer.add_string buf
    (Printf.sprintf
       "module %s_top (\n\
       \  input  wire clk,\n\
       \  input  wire rst,\n\
       \  input  wire in_valid,\n\
       \  input  wire [%d:0] in_data,\n\
       \  output wire in_ready,\n\
       \  output wire out_valid,\n\
       \  output wire [%d:0] out_data,\n\
       \  input  wire out_ready\n\
        );\n"
       (sanitize pl.Netlist.pl_name) (w_in - 1) (w_out - 1));
  List.iteri
    (fun i st ->
      let n = sanitize st.Netlist.st_name in
      Buffer.add_string buf
        (Printf.sprintf
           "  wire f%d_valid; wire [%d:0] f%d_data; wire f%d_ready;\n\
           \  lm_fifo #(.W(%d)) fifo_%d (.clk(clk), .rst(rst),\n\
           \    .wr_en(%s), .wr_data(%s), .full(),\n\
           \    .rd_en(f%d_ready), .rd_data(f%d_data), .rd_valid(f%d_valid));\n\
           \  %s %s_inst (.clk(clk), .rst(rst),\n\
           \    .in_valid(f%d_valid), .in_data(f%d_data), .in_ready(f%d_ready),\n\
           \    .out_valid(s%d_valid), .out_data(s%d_data), .out_ready(1'b1));\n\
           \  wire s%d_valid; wire [%d:0] s%d_data;\n"
           i
           (st.Netlist.st_in_width - 1)
           i i st.Netlist.st_in_width i
           (if i = 0 then "in_valid" else Printf.sprintf "s%d_valid" (i - 1))
           (if i = 0 then "in_data" else Printf.sprintf "s%d_data" (i - 1))
           i i i n n i i i i i i
           (st.Netlist.st_out_width - 1)
           i))
    pl.Netlist.pl_stages;
  let last = List.length pl.Netlist.pl_stages - 1 in
  Buffer.add_string buf
    (Printf.sprintf
       "  assign in_ready = 1'b1;\n\
       \  assign out_valid = s%d_valid;\n\
       \  assign out_data = s%d_data;\n\
        endmodule\n"
       last last);
  Buffer.contents buf
