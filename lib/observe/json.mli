(** A minimal JSON reader — enough to load saved Chrome traces and this
    tool's own JSON exports. No external JSON library exists in the
    tree; the only deviation from the RFC grammar is that [\u] escapes
    fold to their low byte (the exporters only escape ASCII control
    characters). *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error with the failing offset on malformed input. *)

val parse_opt : string -> t option

(** {2 Accessors} *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects. *)

val to_list : t -> t list
(** Array elements; [[]] on non-arrays. *)

val str_opt : t option -> string option
val num_opt : t option -> float option
