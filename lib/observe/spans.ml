(* Span-tree reconstruction over a flat trace.

   The ring buffer stores completed spans in completion order; the
   runtime is single-threaded, so spans from one run nest properly by
   interval containment. Reconstruction sorts by start time (outermost
   first on ties) and rebuilds the tree with a stack.

   The other half is the timeline partition: every instant of a span's
   wall time is owned by its *deepest* enclosing span, so the slices of
   a root form an exact partition of the root's interval. That is what
   makes attribution sum to wall time by construction — the tested
   invariant the report layer builds on. *)

module Trace = Support.Trace

type span = {
  name : string;
  cat : string;
  ts : float;  (* start, us on the sink's timeline *)
  dur : float;  (* us *)
  args : (string * Trace.arg) list;
  mutable children : span list;  (* start order *)
}

(* Saved traces round-trip through "%.3f" microsecond formatting, so a
   child's endpoint can poke up to 1ns past its parent's; containment
   is tested with a few ns of slack and slices are clamped to the
   parent interval so the partition stays exact anyway. *)
let eps = 0.005

let find_arg sp key = List.assoc_opt key sp.args

let arg_float sp key =
  match find_arg sp key with
  | Some (Trace.Float f) -> Some f
  | Some (Trace.Int i) -> Some (float_of_int i)
  | _ -> None

let arg_int sp key =
  match find_arg sp key with
  | Some (Trace.Int i) -> Some i
  | Some (Trace.Float f) -> Some (int_of_float f)
  | _ -> None

let arg_bool sp key =
  match find_arg sp key with Some (Trace.Bool b) -> Some b | _ -> None

let contains outer inner =
  inner.ts >= outer.ts -. eps
  && inner.ts +. inner.dur <= outer.ts +. outer.dur +. eps

let build (events : Trace.event list) : span list =
  let spans =
    events
    |> List.filter_map (function
         | Trace.Span { name; cat; ts_us; dur_us; args } ->
           Some
             {
               name;
               cat;
               ts = ts_us;
               dur = Float.max 0.0 dur_us;
               args;
               children = [];
             }
         | Trace.Instant _ | Trace.Counter _ -> None)
  in
  let indexed = List.mapi (fun i sp -> i, sp) spans in
  (* start ascending; on equal starts the longer span is the outer
     one; on fully equal intervals the ring's completion order breaks
     the tie (the parent completes after the child, so the later ring
     index is the outer span). *)
  let ordered =
    List.stable_sort
      (fun (i, a) (j, b) ->
        match Float.compare a.ts b.ts with
        | 0 -> (
          match Float.compare b.dur a.dur with
          | 0 -> Int.compare j i
          | c -> c)
        | c -> c)
      indexed
    |> List.map snd
  in
  let roots = ref [] in
  let stack = ref [] in
  List.iter
    (fun sp ->
      let rec unwind () =
        match !stack with
        | top :: rest when not (contains top sp) ->
          stack := rest;
          unwind ()
        | _ -> ()
      in
      unwind ();
      (match !stack with
      | [] -> roots := sp :: !roots
      | top :: _ -> top.children <- sp :: top.children);
      stack := sp :: !stack)
    ordered;
  let rec finalize sp =
    sp.children <- List.rev sp.children;
    List.iter finalize sp.children
  in
  let roots = List.rev !roots in
  List.iter finalize roots;
  roots

(* Deepest-owner partition of [root]'s interval. [enter] threads
   context top-down (the report derives attributed device and segment
   from it); each emitted slice carries the context at its owner.
   Slices are emitted in time order and their lengths sum exactly to
   [root.dur]. *)
let slices ~init ~enter root =
  let out = ref [] in
  let rec go ctx ~lo ~hi sp =
    let ctx = enter ctx sp in
    let t0 = Float.min (Float.max sp.ts lo) hi in
    let t1 = Float.min (Float.max (sp.ts +. sp.dur) t0) hi in
    let cursor = ref t0 in
    List.iter
      (fun c ->
        let c0 = Float.min (Float.max c.ts !cursor) t1 in
        if c0 > !cursor then out := (ctx, sp, !cursor, c0) :: !out;
        go ctx ~lo:c0 ~hi:t1 c;
        cursor := Float.min (Float.max (c.ts +. c.dur) c0) t1)
      sp.children;
    if t1 > !cursor then out := (ctx, sp, !cursor, t1) :: !out
  in
  go init ~lo:root.ts ~hi:(root.ts +. root.dur) root;
  List.rev !out
