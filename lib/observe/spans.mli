(** Span-tree reconstruction and the deepest-owner timeline partition.

    The trace ring holds completed spans flat, in completion order;
    {!build} rebuilds the nesting by interval containment (the runtime
    is single-threaded, so spans nest properly — saved traces carry a
    few ns of formatting jitter, which is absorbed by clamping).

    {!slices} partitions a root span's wall time so each instant is
    owned by its deepest enclosing span. Slice lengths sum exactly to
    the root's duration by construction — the invariant that lets the
    report layer attribute wall time without double counting. *)

type span = {
  name : string;
  cat : string;
  ts : float;  (** start, microseconds on the sink's timeline *)
  dur : float;
  args : (string * Support.Trace.arg) list;
  mutable children : span list;  (** start order *)
}

val eps : float
(** Containment slack in microseconds: saved traces round-trip through
    ["%.3f"] formatting, so nested endpoints can disagree by ~1ns. *)

val build : Support.Trace.event list -> span list
(** Roots in start order. Instants and counters are ignored. *)

val slices :
  init:'c -> enter:('c -> span -> 'c) -> span -> ('c * span * float * float) list
(** [slices ~init ~enter root] is the deepest-owner partition of
    [root]'s interval, in time order, as [(ctx, owner, t0, t1)]
    tuples. [enter] threads context top-down: it sees every span on the
    path from the root, and each slice carries the context computed at
    its owner (the report derives attributed device/segment this way). *)

(** {2 Argument accessors} *)

val find_arg : span -> string -> Support.Trace.arg option
val arg_float : span -> string -> float option
(** Also accepts [Int] args. *)

val arg_int : span -> string -> int option
val arg_bool : span -> string -> bool option
