(* Trace-driven run analysis.

   Takes the raw span soup a run leaves in the trace ring and answers
   the three questions the ROADMAP items keep needing: what gated the
   makespan (critical path), where the wall time went (attribution per
   bucket, device and segment), and whether the placement planner's
   profile-store predictions still match observed launches (drift).

   The execution engine is single-threaded, so the critical path is the
   timeline itself: the deepest-owner partition of the run's root spans
   *is* the chain of work that gated end-to-end makespan, and its
   length equals wall time by construction. Attribution buckets are a
   relabeling of the same partition, which is why they sum to wall time
   — the invariant the tests pin. *)

module Trace = Support.Trace

type bucket = Compute | Marshal | Sched | Backoff | Other

type attribution = {
  at_compute : float;  (* us: device kernels, VM/native execution *)
  at_marshal : float;  (* us: boundary serialization + modeled transfer *)
  at_sched : float;  (* us: task-graph scheduling loop, actor stepping *)
  at_backoff : float;  (* us: wall time in the retry/backoff path *)
  at_other : float;  (* us: spans outside the known taxonomy *)
}

type device_row = {
  dv_name : string;
  dv_busy_us : float;
  dv_compute_us : float;
  dv_marshal_us : float;
  dv_util : float;  (* busy / wall *)
  dv_idle_us : float;
  dv_idle_gaps : int;
  dv_longest_idle_us : float;
}

type segment_row = {
  sg_uid : string;
  sg_device : string;
  sg_launches : int;
  sg_compute_us : float;
  sg_marshal_us : float;
}

type path_step = {
  ps_name : string;
  ps_cat : string;
  ps_count : int;  (* consecutive same-owner slices merged *)
  ps_total_us : float;
}

type gate_row = {
  g_cat : string;
  g_name : string;
  g_count : int;
  g_total_us : float;
}

type drift_row = {
  dr_uid : string;
  dr_device : string;
  dr_launches : int;
  dr_elements : int;
  dr_observed_ns : float;
  dr_predicted_ns : float option;
  dr_source : string;  (* profile entry source, or "-" *)
}

type tenant_row = {
  tn_tenant : string;
  tn_jobs : int;
  tn_wall_us : float;  (* summed job-span wall time *)
  tn_share : float;  (* of all tenants' job wall time *)
  tn_devices : string;  (* distinct devices used, comma-joined *)
}

type t = {
  rp_wall_us : float;
  rp_roots : int;
  rp_events : int;
  rp_dropped : int;
  rp_attr : attribution;
  rp_backoff_modeled_us : float;
  rp_devices : device_row list;
  rp_segments : segment_row list;
  rp_path : path_step list;
  rp_gates : gate_row list;
  rp_critical_us : float;
  rp_drift : drift_row list;
  rp_drift_note : string option;
  rp_tenants : tenant_row list;
      (* per-tenant wall attribution from `job:` spans; empty for
         single-job traces *)
}

type predict = uid:string -> device:string -> n:int -> (float * string) option

(* Observed launches drifting past 1.5x (either way) of the profile
   store's prediction are flagged — the same factor `--replan` uses to
   demote an underperforming device. *)
let drift_factor = 1.5

(* --- the trace taxonomy ------------------------------------------------ *)

let split_colon name =
  match String.index_opt name ':' with
  | Some i ->
    ( String.sub name 0 i,
      String.sub name (i + 1) (String.length name - i - 1) )
  | None -> name, ""

type ctx = { cx_device : string; cx_segment : string option }

let enter ctx (sp : Spans.span) =
  match sp.cat with
  | "launch" ->
    let device, uid = split_colon sp.name in
    { cx_device = device; cx_segment = Some uid }
  | "gpu" -> { ctx with cx_device = "gpu" }
  | "fpga" -> { ctx with cx_device = "fpga" }
  | "vm" ->
    let prefix, uid = split_colon sp.name in
    let segment = if prefix = "bc" then Some uid else ctx.cx_segment in
    { cx_device = "cpu"; cx_segment = segment }
  | "run" | "compiler" | "job" -> { cx_device = "cpu"; cx_segment = None }
  | "runtime" | "sched" -> { ctx with cx_device = "cpu" }
  (* boundary and backoff inherit: marshaling belongs to the launch
     that forced the crossing *)
  | _ -> ctx

let bucket_of (sp : Spans.span) =
  match sp.cat with
  | "boundary" -> Marshal
  | "backoff" -> Backoff
  (* a job span's own slices are the serve engine's bookkeeping
     around the inner run span: scheduling, not compute *)
  | "runtime" | "sched" | "job" -> Sched
  | "launch" | "gpu" | "fpga" | "vm" | "run" | "native" | "compiler" ->
    Compute
  | _ -> Other

(* --- analysis ---------------------------------------------------------- *)

(* Roots to analyze: prefer `job:` roots (one per job of a multi-tenant
   [lmc serve] run), then the runtime's `run:` roots (one per
   Exec.call); older traces without either fall back to task-graph or
   top-level launch spans. Compiler phases are never part of a run's
   makespan. *)
let analysis_roots roots =
  let by cat = List.filter (fun (sp : Spans.span) -> sp.cat = cat) roots in
  match by "job" with
  | [] -> (
    match by "run" with
    | [] -> (
      match by "runtime" with [] -> by "launch" | rs -> rs)
    | rs -> rs)
  | rs -> rs

type slice = {
  sl_t0 : float;
  sl_t1 : float;
  sl_owner : Spans.span;
  sl_device : string;
  sl_segment : string option;
}

let slice_us s = s.sl_t1 -. s.sl_t0

let slices_of_roots roots =
  List.concat_map
    (fun root ->
      Spans.slices ~init:{ cx_device = "cpu"; cx_segment = None } ~enter root
      |> List.map (fun (ctx, owner, t0, t1) ->
             {
               sl_t0 = t0;
               sl_t1 = t1;
               sl_owner = owner;
               sl_device = ctx.cx_device;
               sl_segment = ctx.cx_segment;
             }))
    roots

(* first-seen-order grouping *)
let group_fold key_of add init xs =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun x ->
      match key_of x with
      | None -> ()
      | Some key ->
        let acc =
          match Hashtbl.find_opt tbl key with
          | Some acc -> acc
          | None ->
            order := key :: !order;
            init
        in
        Hashtbl.replace tbl key (add acc x))
    xs;
  List.rev_map (fun key -> key, Hashtbl.find tbl key) !order

let attribution slices =
  List.fold_left
    (fun at s ->
      let d = slice_us s in
      match bucket_of s.sl_owner with
      | Compute -> { at with at_compute = at.at_compute +. d }
      | Marshal -> { at with at_marshal = at.at_marshal +. d }
      | Sched -> { at with at_sched = at.at_sched +. d }
      | Backoff -> { at with at_backoff = at.at_backoff +. d }
      | Other -> { at with at_other = at.at_other +. d })
    {
      at_compute = 0.0;
      at_marshal = 0.0;
      at_sched = 0.0;
      at_backoff = 0.0;
      at_other = 0.0;
    }
    slices

let attribution_total at =
  at.at_compute +. at.at_marshal +. at.at_sched +. at.at_backoff +. at.at_other

let device_rows ~wall roots slices =
  let windows = List.map (fun (r : Spans.span) -> r.ts, r.ts +. r.dur) roots in
  group_fold
    (fun s -> Some s.sl_device)
    (fun acc s -> s :: acc)
    [] slices
  |> List.map (fun (device, rev_slices) ->
         let ss = List.rev rev_slices in
         let compute, marshal =
           List.fold_left
             (fun (c, m) s ->
               match bucket_of s.sl_owner with
               | Compute -> c +. slice_us s, m
               | Marshal -> c, m +. slice_us s
               | _ -> c, m)
             (0.0, 0.0) ss
         in
         let busy = List.fold_left (fun acc s -> acc +. slice_us s) 0.0 ss in
         (* merge this device's (already disjoint, time-ordered) busy
            intervals, then walk each root window counting the gaps *)
         let merged =
           List.fold_left
             (fun acc s ->
               match acc with
               | (t0, t1) :: rest when s.sl_t0 -. t1 <= Spans.eps ->
                 (t0, Float.max t1 s.sl_t1) :: rest
               | _ -> (s.sl_t0, s.sl_t1) :: acc)
             [] ss
           |> List.rev
         in
         let gaps = ref 0 and longest = ref 0.0 in
         let note_gap g =
           if g > Spans.eps then begin
             incr gaps;
             if g > !longest then longest := g
           end
         in
         List.iter
           (fun (w0, w1) ->
             let cursor = ref w0 in
             List.iter
               (fun (b0, b1) ->
                 if b0 >= w0 && b1 <= w1 +. Spans.eps then begin
                   note_gap (b0 -. !cursor);
                   cursor := Float.max !cursor b1
                 end)
               merged;
             note_gap (w1 -. !cursor))
           windows;
         {
           dv_name = device;
           dv_busy_us = busy;
           dv_compute_us = compute;
           dv_marshal_us = marshal;
           dv_util = (if wall > 0.0 then busy /. wall else 0.0);
           dv_idle_us = Float.max 0.0 (wall -. busy);
           dv_idle_gaps = !gaps;
           dv_longest_idle_us = !longest;
         })

let segment_rows ~launches slices =
  group_fold
    (fun s ->
      match s.sl_segment with
      | Some uid -> Some (uid, s.sl_device)
      | None -> None)
    (fun (c, m) s ->
      match bucket_of s.sl_owner with
      | Marshal -> c, m +. slice_us s
      | _ -> c +. slice_us s, m)
    (0.0, 0.0) slices
  |> List.map (fun ((uid, device), (compute, marshal)) ->
         let n =
           match
             List.find_opt
               (fun (u, d, _, _, _) -> u = uid && d = device)
               launches
           with
           | Some (_, _, count, _, _) -> count
           | None -> 0
         in
         {
           sg_uid = uid;
           sg_device = device;
           sg_launches = n;
           sg_compute_us = compute;
           sg_marshal_us = marshal;
         })
  |> List.sort (fun a b ->
         Float.compare
           (b.sg_compute_us +. b.sg_marshal_us)
           (a.sg_compute_us +. a.sg_marshal_us))

let path_steps slices =
  List.fold_left
    (fun acc s ->
      let d = slice_us s in
      match acc with
      | step :: rest
        when step.ps_name = s.sl_owner.Spans.name
             && step.ps_cat = s.sl_owner.Spans.cat ->
        { step with
          ps_count = step.ps_count + 1;
          ps_total_us = step.ps_total_us +. d }
        :: rest
      | _ ->
        {
          ps_name = s.sl_owner.Spans.name;
          ps_cat = s.sl_owner.Spans.cat;
          ps_count = 1;
          ps_total_us = d;
        }
        :: acc)
    [] slices
  |> List.rev

let gate_rows slices =
  group_fold
    (fun s -> Some (s.sl_owner.Spans.cat, s.sl_owner.Spans.name))
    (fun (n, total) s -> n + 1, total +. slice_us s)
    (0, 0.0) slices
  |> List.map (fun ((cat, name), (count, total)) ->
         { g_cat = cat; g_name = name; g_count = count; g_total_us = total })
  |> List.sort (fun a b -> Float.compare b.g_total_us a.g_total_us)

(* Launch accounting straight from the events: (uid, device, count,
   elements, observed modeled ns). Faulted attempts are excluded — a
   prediction is for a completed launch. Launches without a modeled_ns
   arg (older traces) fall back to their wall duration. *)
let launch_groups events =
  let spans = List.filter_map (function
      | Trace.Span { name; cat; ts_us = _; dur_us; args } when cat = "launch"
        -> Some (name, dur_us, args)
      | _ -> None)
      events
  in
  group_fold
    (fun (name, _, args) ->
      let faulted =
        match List.assoc_opt "faulted" args with
        | Some (Trace.Bool true) -> true
        | _ -> false
      in
      if faulted then None
      else
        let device, uid = split_colon name in
        if uid = "" then None else Some (uid, device))
    (fun (count, elements, observed) (_, dur_us, args) ->
      let n =
        match List.assoc_opt "elements" args with
        | Some (Trace.Int i) -> i
        | Some (Trace.Float f) -> int_of_float f
        | _ -> 0
      in
      let ns =
        match List.assoc_opt "modeled_ns" args with
        | Some (Trace.Float f) -> f
        | Some (Trace.Int i) -> float_of_int i
        | _ -> dur_us *. 1000.0
      in
      count + 1, elements + n, observed +. ns)
    (0, 0, 0.0) spans
  |> List.map (fun ((uid, device), (count, elements, observed)) ->
         uid, device, count, elements, observed)

let drift_rows ~(predict : predict option) events =
  let per_launch_ns = Hashtbl.create 16 in
  (* predictions are per launch (per batch size), so walk the events
     again accumulating predicted ns launch by launch *)
  (match predict with
  | None -> ()
  | Some predict ->
    List.iter
      (function
        | Trace.Span { name; cat; args; _ } when cat = "launch" -> (
          let faulted =
            match List.assoc_opt "faulted" args with
            | Some (Trace.Bool true) -> true
            | _ -> false
          in
          let device, uid = split_colon name in
          if (not faulted) && uid <> "" then
            let n =
              match List.assoc_opt "elements" args with
              | Some (Trace.Int i) -> i
              | Some (Trace.Float f) -> int_of_float f
              | _ -> 0
            in
            match predict ~uid ~device ~n with
            | Some (ns, source) ->
              let prev =
                Option.value ~default:(0.0, source)
                  (Hashtbl.find_opt per_launch_ns (uid, device))
              in
              Hashtbl.replace per_launch_ns (uid, device)
                (fst prev +. ns, source)
            | None -> ())
        | _ -> ())
      events);
  launch_groups events
  |> List.map (fun (uid, device, launches, elements, observed) ->
         let predicted, source =
           match Hashtbl.find_opt per_launch_ns (uid, device) with
           | Some (ns, source) -> Some ns, source
           | None -> None, "-"
         in
         {
           dr_uid = uid;
           dr_device = device;
           dr_launches = launches;
           dr_elements = elements;
           dr_observed_ns = observed;
           dr_predicted_ns = predicted;
           dr_source = source;
         })

(* Per-tenant wall attribution: each `job:` root span carries the
   tenant (and chosen device) in its args, so a serve trace answers
   "whose jobs was the engine busy with" directly. *)
let tenant_rows roots =
  let jobs =
    List.filter (fun (sp : Spans.span) -> sp.Spans.cat = "job") roots
  in
  let rows =
    group_fold
      (fun (sp : Spans.span) ->
        match Spans.find_arg sp "tenant" with
        | Some (Trace.Str tenant) -> Some tenant
        | _ -> None)
      (fun (count, wall, devices) sp ->
        let devices =
          match Spans.find_arg sp "device" with
          | Some (Trace.Str d) when not (List.mem d devices) -> d :: devices
          | _ -> devices
        in
        (count + 1, wall +. sp.Spans.dur, devices))
      (0, 0.0, []) jobs
  in
  let total =
    List.fold_left (fun acc (_, (_, wall, _)) -> acc +. wall) 0.0 rows
  in
  List.map
    (fun (tenant, (count, wall, devices)) ->
      {
        tn_tenant = tenant;
        tn_jobs = count;
        tn_wall_us = wall;
        tn_share = (if total > 0.0 then wall /. total else 0.0);
        tn_devices = String.concat "," (List.rev devices);
      })
    rows

let drift_verdict row =
  match row.dr_predicted_ns with
  | None -> "n/a"
  | Some p when p <= 0.0 -> "n/a"
  | Some p ->
    let ratio = row.dr_observed_ns /. p in
    if ratio > drift_factor then "drift(slow)"
    else if ratio < 1.0 /. drift_factor then "drift(fast)"
    else "ok"

let drift_ratio row =
  match row.dr_predicted_ns with
  | Some p when p > 0.0 -> Some (row.dr_observed_ns /. p)
  | _ -> None

let analyze ?predict ?(dropped = 0) ?drift_note (events : Trace.event list) : t
    =
  let roots = analysis_roots (Spans.build events) in
  let slices = slices_of_roots roots in
  let wall =
    List.fold_left (fun acc (r : Spans.span) -> acc +. r.dur) 0.0 roots
  in
  let attr = attribution slices in
  let backoff_modeled_ns =
    List.fold_left
      (fun acc e ->
        match e with
        | Trace.Span { cat = "backoff"; args; _ } -> (
          match List.assoc_opt "backoff_ns" args with
          | Some (Trace.Float f) -> acc +. f
          | Some (Trace.Int i) -> acc +. float_of_int i
          | _ -> acc)
        | _ -> acc)
      0.0 events
  in
  let launches = launch_groups events in
  {
    rp_wall_us = wall;
    rp_roots = List.length roots;
    rp_events = List.length events;
    rp_dropped = dropped;
    rp_attr = attr;
    rp_backoff_modeled_us = backoff_modeled_ns /. 1000.0;
    rp_devices = device_rows ~wall roots slices;
    rp_segments = segment_rows ~launches slices;
    rp_path = path_steps slices;
    rp_gates = gate_rows slices;
    rp_critical_us =
      List.fold_left (fun acc s -> acc +. slice_us s) 0.0 slices;
    rp_drift = drift_rows ~predict events;
    rp_drift_note = drift_note;
    rp_tenants = tenant_rows roots;
  }

let of_sink ?predict ?drift_note sink =
  analyze ?predict ?drift_note ~dropped:(Trace.dropped sink)
    (Trace.events sink)

(* --- offline: a saved Chrome trace ------------------------------------- *)

let arg_of_json = function
  | Json.Str s -> Trace.Str s
  | Json.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Trace.Int (int_of_float f)
    else Trace.Float f
  | Json.Bool b -> Trace.Bool b
  | j -> Trace.Str (match j with Json.Null -> "null" | _ -> "?")

let events_of_chrome json =
  Json.to_list (Option.value ~default:(Json.Arr []) (Json.member "traceEvents" json))
  |> List.filter_map (fun e ->
         let name = Option.value ~default:"" (Json.str_opt (Json.member "name" e)) in
         let cat = Option.value ~default:"" (Json.str_opt (Json.member "cat" e)) in
         let ts = Option.value ~default:0.0 (Json.num_opt (Json.member "ts" e)) in
         let args () =
           match Json.member "args" e with
           | Some (Json.Obj fields) ->
             List.map (fun (k, v) -> k, arg_of_json v) fields
           | _ -> []
         in
         match Json.str_opt (Json.member "ph" e) with
         | Some "X" ->
           let dur =
             Option.value ~default:0.0 (Json.num_opt (Json.member "dur" e))
           in
           Some
             (Trace.Span
                { name; cat; ts_us = ts; dur_us = dur; args = args () })
         | Some "i" ->
           Some (Trace.Instant { name; cat; ts_us = ts; args = args () })
         | Some "C" ->
           let values =
             match Json.member "args" e with
             | Some (Json.Obj fields) ->
               List.filter_map
                 (fun (k, v) ->
                   match v with Json.Num f -> Some (k, f) | _ -> None)
                 fields
             | _ -> []
           in
           Some (Trace.Counter { name; ts_us = ts; values })
         | _ -> None)

let of_chrome_json ?predict ?drift_note text =
  match Json.parse_opt text with
  | None -> Error "not valid JSON (expected a Chrome trace_event file)"
  | Some json ->
    let dropped =
      match Json.member "otherData" json with
      | Some other ->
        int_of_float
          (Option.value ~default:0.0
             (Json.num_opt (Json.member "droppedEvents" other)))
      | None -> 0
    in
    let events = events_of_chrome json in
    if events = [] then Error "no trace events found"
    else Ok (analyze ?predict ?drift_note ~dropped events)

(* --- rendering --------------------------------------------------------- *)

let us f = Printf.sprintf "%.1f" f
let pct f = Printf.sprintf "%.1f%%" (f *. 100.0)
let max_path_steps = 14

let render (r : t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "report: wall %s us over %d run root(s), %d event(s), %d dropped\n"
       (us r.rp_wall_us) r.rp_roots r.rp_events r.rp_dropped);
  if r.rp_dropped > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "warning: trace truncated — the oldest %d event(s) were dropped; \
          every number below undercounts the run\n"
         r.rp_dropped);
  let wall = if r.rp_wall_us > 0.0 then r.rp_wall_us else 1.0 in
  (* attribution *)
  Buffer.add_string buf "\nattribution (wall time):\n";
  let t = Support.Stats.Table.create ~columns:[ "bucket"; "us"; "share" ] in
  let row name v = Support.Stats.Table.add_row t [ name; us v; pct (v /. wall) ] in
  row "compute" r.rp_attr.at_compute;
  row "marshal" r.rp_attr.at_marshal;
  row "sched" r.rp_attr.at_sched;
  row "backoff" r.rp_attr.at_backoff;
  if r.rp_attr.at_other > 0.0 then row "other" r.rp_attr.at_other;
  row "total" (attribution_total r.rp_attr);
  Buffer.add_string buf (Support.Stats.Table.render t);
  if r.rp_backoff_modeled_us > 0.0 then
    Buffer.add_string buf
      (Printf.sprintf
         "note: retry backoff is modeled time (%s us modeled); the wall \
          column shows real time spent in the retry path\n"
         (us r.rp_backoff_modeled_us));
  (* tenants (multi-tenant serve traces only) *)
  if r.rp_tenants <> [] then begin
    Buffer.add_string buf "\ntenants (wall time per tenant's jobs):\n";
    let t =
      Support.Stats.Table.create
        ~columns:[ "tenant"; "jobs"; "us"; "share"; "devices" ]
    in
    List.iter
      (fun tn ->
        Support.Stats.Table.add_row t
          [
            tn.tn_tenant; string_of_int tn.tn_jobs; us tn.tn_wall_us;
            pct tn.tn_share; tn.tn_devices;
          ])
      r.rp_tenants;
    Buffer.add_string buf (Support.Stats.Table.render t)
  end;
  (* devices *)
  if r.rp_devices <> [] then begin
    Buffer.add_string buf "\ndevices (busy/idle over the run window):\n";
    let t =
      Support.Stats.Table.create
        ~columns:
          [ "device"; "busy"; "compute"; "marshal"; "util"; "idle"; "gaps";
            "longest_idle" ]
    in
    List.iter
      (fun d ->
        Support.Stats.Table.add_row t
          [
            d.dv_name; us d.dv_busy_us; us d.dv_compute_us;
            us d.dv_marshal_us; pct d.dv_util; us d.dv_idle_us;
            string_of_int d.dv_idle_gaps; us d.dv_longest_idle_us;
          ])
      r.rp_devices;
    Buffer.add_string buf (Support.Stats.Table.render t)
  end;
  (* segments *)
  if r.rp_segments <> [] then begin
    Buffer.add_string buf "\nsegments (us attributed):\n";
    let t =
      Support.Stats.Table.create
        ~columns:[ "segment"; "device"; "launches"; "compute"; "marshal" ]
    in
    List.iter
      (fun s ->
        Support.Stats.Table.add_row t
          [
            s.sg_uid; s.sg_device; string_of_int s.sg_launches;
            us s.sg_compute_us; us s.sg_marshal_us;
          ])
      r.rp_segments;
    Buffer.add_string buf (Support.Stats.Table.render t)
  end;
  (* critical path *)
  Buffer.add_string buf
    (Printf.sprintf "\ncritical path (%s us — gates the makespan):\n"
       (us r.rp_critical_us));
  let t =
    Support.Stats.Table.create ~columns:[ "#"; "cat"; "span"; "count"; "us" ]
  in
  let n_steps = List.length r.rp_path in
  List.iteri
    (fun i step ->
      if i < max_path_steps then
        Support.Stats.Table.add_row t
          [
            string_of_int (i + 1); step.ps_cat; step.ps_name;
            string_of_int step.ps_count; us step.ps_total_us;
          ])
    r.rp_path;
  Buffer.add_string buf (Support.Stats.Table.render t);
  if n_steps > max_path_steps then
    Buffer.add_string buf
      (Printf.sprintf "... (+%d more step(s))\n" (n_steps - max_path_steps));
  (* top gates *)
  if r.rp_gates <> [] then begin
    Buffer.add_string buf "\ntop gates (aggregated over the path):\n";
    let t =
      Support.Stats.Table.create
        ~columns:[ "cat"; "span"; "count"; "us"; "share" ]
    in
    List.iteri
      (fun i g ->
        if i < 10 then
          Support.Stats.Table.add_row t
            [
              g.g_cat; g.g_name; string_of_int g.g_count; us g.g_total_us;
              pct (g.g_total_us /. wall);
            ])
      r.rp_gates;
    Buffer.add_string buf (Support.Stats.Table.render t)
  end;
  (* drift *)
  if r.rp_drift <> [] then begin
    Buffer.add_string buf
      "\nprediction drift (observed vs profile store, modeled us):\n";
    let t =
      Support.Stats.Table.create
        ~columns:
          [ "segment"; "device"; "launches"; "elements"; "observed";
            "predicted"; "ratio"; "profile"; "verdict" ]
    in
    List.iter
      (fun d ->
        Support.Stats.Table.add_row t
          [
            d.dr_uid; d.dr_device; string_of_int d.dr_launches;
            string_of_int d.dr_elements;
            us (d.dr_observed_ns /. 1000.0);
            (match d.dr_predicted_ns with
            | Some p -> us (p /. 1000.0)
            | None -> "-");
            (match drift_ratio d with
            | Some ratio -> Printf.sprintf "%.2f" ratio
            | None -> "-");
            d.dr_source; drift_verdict d;
          ])
      r.rp_drift;
    Buffer.add_string buf (Support.Stats.Table.render t)
  end;
  (match r.rp_drift_note with
  | Some note -> Buffer.add_string buf (Printf.sprintf "note: %s\n" note)
  | None -> ());
  Buffer.contents buf

(* --- JSON -------------------------------------------------------------- *)

let jstr s =
  let buf = Buffer.create (String.length s + 8) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let jnum f =
  if Float.is_nan f then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let max_json_path_steps = 100

let render_json (r : t) =
  let buf = Buffer.create 4096 in
  let add = Buffer.add_string buf in
  add "{";
  add (Printf.sprintf "\"wall_us\":%s," (jnum r.rp_wall_us));
  add (Printf.sprintf "\"roots\":%d," r.rp_roots);
  add (Printf.sprintf "\"events\":%d," r.rp_events);
  add (Printf.sprintf "\"dropped\":%d," r.rp_dropped);
  add
    (Printf.sprintf "\"truncated\":%b," (r.rp_dropped > 0));
  add
    (Printf.sprintf
       "\"attribution\":{\"compute_us\":%s,\"marshal_us\":%s,\"sched_us\":%s,\"backoff_us\":%s,\"other_us\":%s,\"total_us\":%s,\"backoff_modeled_us\":%s},"
       (jnum r.rp_attr.at_compute) (jnum r.rp_attr.at_marshal)
       (jnum r.rp_attr.at_sched) (jnum r.rp_attr.at_backoff)
       (jnum r.rp_attr.at_other)
       (jnum (attribution_total r.rp_attr))
       (jnum r.rp_backoff_modeled_us));
  add "\"devices\":[";
  add
    (String.concat ","
       (List.map
          (fun d ->
            Printf.sprintf
              "{\"device\":%s,\"busy_us\":%s,\"compute_us\":%s,\"marshal_us\":%s,\"util\":%.4f,\"idle_us\":%s,\"idle_gaps\":%d,\"longest_idle_us\":%s}"
              (jstr d.dv_name) (jnum d.dv_busy_us) (jnum d.dv_compute_us)
              (jnum d.dv_marshal_us) d.dv_util (jnum d.dv_idle_us)
              d.dv_idle_gaps
              (jnum d.dv_longest_idle_us))
          r.rp_devices));
  add "],\"segments\":[";
  add
    (String.concat ","
       (List.map
          (fun s ->
            Printf.sprintf
              "{\"uid\":%s,\"device\":%s,\"launches\":%d,\"compute_us\":%s,\"marshal_us\":%s}"
              (jstr s.sg_uid) (jstr s.sg_device) s.sg_launches
              (jnum s.sg_compute_us) (jnum s.sg_marshal_us))
          r.rp_segments));
  add "],\"critical_path\":[";
  let steps = List.filteri (fun i _ -> i < max_json_path_steps) r.rp_path in
  add
    (String.concat ","
       (List.map
          (fun p ->
            Printf.sprintf
              "{\"cat\":%s,\"name\":%s,\"count\":%d,\"total_us\":%s}"
              (jstr p.ps_cat) (jstr p.ps_name) p.ps_count (jnum p.ps_total_us))
          steps));
  add
    (Printf.sprintf "],\"critical_path_steps\":%d,\"critical_us\":%s,"
       (List.length r.rp_path) (jnum r.rp_critical_us));
  add "\"top_gates\":[";
  add
    (String.concat ","
       (List.map
          (fun g ->
            Printf.sprintf
              "{\"cat\":%s,\"name\":%s,\"count\":%d,\"total_us\":%s}"
              (jstr g.g_cat) (jstr g.g_name) g.g_count (jnum g.g_total_us))
          (List.filteri (fun i _ -> i < 10) r.rp_gates)));
  add "],\"drift\":[";
  add
    (String.concat ","
       (List.map
          (fun d ->
            Printf.sprintf
              "{\"uid\":%s,\"device\":%s,\"launches\":%d,\"elements\":%d,\"observed_us\":%s,\"predicted_us\":%s,\"ratio\":%s,\"profile\":%s,\"verdict\":%s}"
              (jstr d.dr_uid) (jstr d.dr_device) d.dr_launches d.dr_elements
              (jnum (d.dr_observed_ns /. 1000.0))
              (match d.dr_predicted_ns with
              | Some p -> jnum (p /. 1000.0)
              | None -> "null")
              (match drift_ratio d with
              | Some ratio -> Printf.sprintf "%.4f" ratio
              | None -> "null")
              (jstr d.dr_source)
              (jstr (drift_verdict d)))
          r.rp_drift));
  add "],\"tenants\":[";
  add
    (String.concat ","
       (List.map
          (fun tn ->
            Printf.sprintf
              "{\"tenant\":%s,\"jobs\":%d,\"wall_us\":%s,\"share\":%.4f,\"devices\":%s}"
              (jstr tn.tn_tenant) tn.tn_jobs (jnum tn.tn_wall_us) tn.tn_share
              (jstr tn.tn_devices))
          r.rp_tenants));
  add "],";
  add
    (Printf.sprintf "\"drift_note\":%s"
       (match r.rp_drift_note with Some n -> jstr n | None -> "null"));
  add "}";
  Buffer.contents buf
