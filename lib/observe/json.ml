(* A minimal JSON reader — objects, arrays, strings, numbers, booleans,
   null — just enough to load saved Chrome traces and the tool's own
   JSON exports back in. There is deliberately no JSON library in the
   tree; the grammar here is the full RFC shape minus surrogate-pair
   decoding (\u escapes fold to their low byte, which covers everything
   the exporters emit). *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* the exporters only escape ASCII control characters *)
          Buffer.add_char buf (Char.chr (code land 0x7f));
          pos := !pos + 4;
          go ()
        | Some c -> Buffer.add_char buf c; advance (); go ()
        | None -> fail "unterminated escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if start = !pos then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Obj [])
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Arr [])
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None
let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list = function Arr xs -> xs | _ -> []
let str_opt = function Some (Str s) -> Some s | _ -> None
let num_opt = function Some (Num f) -> Some f | _ -> None
