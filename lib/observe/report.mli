(** Trace-driven run analysis: critical path, wall-time attribution,
    per-device utilization, and prediction drift.

    The input is the event stream a traced run leaves in the
    {!Support.Trace} ring (or a saved Chrome trace file). The execution
    engine is single-threaded, so the deepest-owner partition of the
    run's root spans is simultaneously the critical path (the chain of
    work gating end-to-end makespan) and the attribution (the same
    slices relabeled by bucket) — which is why attribution sums to wall
    time by construction, an invariant the test suite pins.

    Drift joins observed [launch] spans against the placement profile
    store through a caller-supplied {!predict} closure, keeping this
    library independent of [lib/placement]. *)

type bucket = Compute | Marshal | Sched | Backoff | Other

type attribution = {
  at_compute : float;  (** us: device kernels, VM/native execution *)
  at_marshal : float;  (** us: boundary serialization + modeled transfer *)
  at_sched : float;  (** us: task-graph scheduling loop, actor stepping *)
  at_backoff : float;  (** us: wall time spent in the retry/backoff path *)
  at_other : float;  (** us: spans outside the known taxonomy *)
}

type device_row = {
  dv_name : string;
  dv_busy_us : float;
  dv_compute_us : float;
  dv_marshal_us : float;
  dv_util : float;  (** busy / wall *)
  dv_idle_us : float;
  dv_idle_gaps : int;
  dv_longest_idle_us : float;
}

type segment_row = {
  sg_uid : string;
  sg_device : string;
  sg_launches : int;
  sg_compute_us : float;
  sg_marshal_us : float;
}

type path_step = {
  ps_name : string;
  ps_cat : string;
  ps_count : int;  (** consecutive same-owner slices merged *)
  ps_total_us : float;
}

type gate_row = {
  g_cat : string;
  g_name : string;
  g_count : int;
  g_total_us : float;
}

type drift_row = {
  dr_uid : string;
  dr_device : string;
  dr_launches : int;
  dr_elements : int;
  dr_observed_ns : float;  (** summed modeled ns over completed launches *)
  dr_predicted_ns : float option;  (** summed per-launch predictions *)
  dr_source : string;  (** profile entry source, or ["-"] *)
}

type tenant_row = {
  tn_tenant : string;
  tn_jobs : int;
  tn_wall_us : float;  (** summed [job:] root-span wall time *)
  tn_share : float;  (** of all tenants' job wall time *)
  tn_devices : string;  (** distinct devices used, comma-joined *)
}

type t = {
  rp_wall_us : float;
  rp_roots : int;
  rp_events : int;
  rp_dropped : int;
  rp_attr : attribution;
  rp_backoff_modeled_us : float;
  rp_devices : device_row list;
  rp_segments : segment_row list;
  rp_path : path_step list;
  rp_gates : gate_row list;  (** aggregated path slices, largest first *)
  rp_critical_us : float;  (** equals the root wall time by construction *)
  rp_drift : drift_row list;
  rp_drift_note : string option;
  rp_tenants : tenant_row list;
      (** per-tenant wall attribution from the [job:] spans an
          [lmc serve] run emits; empty for single-job traces *)
}

type predict = uid:string -> device:string -> n:int -> (float * string) option
(** Predicted modeled ns for one launch of [n] elements of chain [uid]
    on [device], plus the profile source name — wired to
    [Placement.Calibrate.predictor] by the CLI. *)

val drift_factor : float
(** Launches whose observed/predicted ratio leaves
    [[1/drift_factor, drift_factor]] are flagged (1.5, matching the
    online re-planner's demotion factor). *)

val attribution_total : attribution -> float

val drift_ratio : drift_row -> float option
val drift_verdict : drift_row -> string
(** ["ok"], ["drift(slow)"], ["drift(fast)"], or ["n/a"]. *)

val analyze :
  ?predict:predict ->
  ?dropped:int ->
  ?drift_note:string ->
  Support.Trace.event list ->
  t

val of_sink : ?predict:predict -> ?drift_note:string -> Support.Trace.sink -> t

val of_chrome_json :
  ?predict:predict -> ?drift_note:string -> string -> (t, string) result
(** Offline analysis of a saved Chrome [trace_event] file (as written
    by [lmc run --trace]); picks up the exporter's recorded drop count
    for the truncation warning. *)

val render : t -> string
(** Human tables: attribution, devices, segments, critical path, top
    gates, drift — with a truncation warning when events were
    dropped. *)

val render_json : t -> string
(** The same report as one JSON object. *)
