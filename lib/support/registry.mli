(** A unified metrics registry: counters, gauges and histograms with
    labels, exporting deterministically as JSON and as OpenMetrics-style
    text (scrapeable by a future [lmc serve]).

    Metrics are registered by name (idempotently — registering the same
    name and kind again returns the existing metric); each holds one
    sample per distinct label set. Export order is registration order,
    sample order is first-set order, and label sets are normalized by
    sorting on key, so renderings are stable for tests and diffing. *)

type kind = Counter | Gauge | Histogram

type t
(** A registry: an ordered collection of named metrics. *)

type metric
(** A handle from one of the registration functions below. *)

val create : unit -> t

val counter : t -> ?help:string -> string -> metric
(** Monotone totals (events, bytes, modeled nanoseconds). *)

val gauge : t -> ?help:string -> string -> metric
(** Point-in-time values that may move either way. *)

val histogram : t -> ?help:string -> ?buckets:float list -> string -> metric
(** Observation distributions with cumulative [le] buckets. Default
    bucket bounds are decades from 1 to 1e9 (ns-friendly).
    @raise Invalid_argument on an empty explicit bucket list. *)

val inc : ?labels:(string * string) list -> metric -> float -> unit
(** Add to a counter or gauge sample.
    @raise Invalid_argument on a histogram or a negative counter
    increment. *)

val set : ?labels:(string * string) list -> metric -> float -> unit
(** Replace a counter or gauge sample value (counters allow [set] so a
    snapshot-style producer can export totals it accumulated elsewhere).
    @raise Invalid_argument on a histogram. *)

val observe : ?labels:(string * string) list -> metric -> float -> unit
(** Record one observation into a histogram sample.
    @raise Invalid_argument on a counter or gauge. *)

val value : ?labels:(string * string) list -> metric -> float option
(** The current sample value (histograms: the observation sum), or
    [None] when that label set was never touched. *)

val metric_names : t -> string list
(** In registration order. *)

val to_text : t -> string
(** OpenMetrics-style exposition: [# HELP]/[# TYPE] comment lines, then
    [name{label="v"} value] per sample; histograms expand into
    [_bucket]/[_sum]/[_count] series with cumulative buckets. *)

val to_json : t -> string
(** A JSON array of metric objects
    [{"name","type","help","samples":[{"labels",...}]}]; histogram
    samples carry [count], [sum] and cumulative [buckets]. *)
