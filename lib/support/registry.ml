(* A small process-local metrics registry: named counters, gauges and
   histograms, each carrying labeled sample series.

   The runtime's ad-hoc metrics record (Runtime.Metrics) exports
   through this so every consumer — `lmc --profile`, `lmc report
   --json`, a future `lmc serve` scrape endpoint — reads one
   declaration per metric instead of three hand-maintained renderings.
   Export order is registration order, and sample order within a
   metric is first-set order, so output is deterministic. *)

type kind = Counter | Gauge | Histogram

type sample = {
  s_labels : (string * string) list;  (* sorted by key at lookup *)
  mutable s_value : float;  (* counter/gauge value; histogram sum *)
  mutable s_count : int;  (* histogram observation count *)
  s_buckets : int array;  (* per-bound counts, aligned with m_buckets *)
}

type metric = {
  m_name : string;
  m_kind : kind;
  m_help : string;
  m_buckets : float array;  (* histogram upper bounds, ascending *)
  mutable m_samples : sample list;  (* first-set order *)
}

type t = { mutable metrics : metric list (* registration order *) }

let create () = { metrics = [] }

let default_buckets =
  [| 1.0; 10.0; 100.0; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let register t kind ?(help = "") ?buckets name =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid metric name %S" name);
  match List.find_opt (fun m -> m.m_name = name) t.metrics with
  | Some m ->
    if m.m_kind <> kind then
      invalid_arg
        (Printf.sprintf "Registry: %s already registered as a %s" name
           (kind_name m.m_kind));
    m
  | None ->
    let buckets =
      match kind, buckets with
      | Histogram, Some bs ->
        let a = Array.of_list bs in
        Array.sort Float.compare a;
        if Array.length a = 0 then invalid_arg "Registry: empty bucket list";
        a
      | Histogram, None -> default_buckets
      | _, _ -> [||]
    in
    let m =
      { m_name = name; m_kind = kind; m_help = help; m_buckets = buckets;
        m_samples = [] }
    in
    t.metrics <- t.metrics @ [ m ];
    m

let counter t ?help name = register t Counter ?help name
let gauge t ?help name = register t Gauge ?help name
let histogram t ?help ?buckets name = register t Histogram ?help ?buckets name

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let sample m labels =
  let labels = normalize_labels labels in
  match List.find_opt (fun s -> s.s_labels = labels) m.m_samples with
  | Some s -> s
  | None ->
    let s =
      { s_labels = labels; s_value = 0.0; s_count = 0;
        s_buckets = Array.make (Array.length m.m_buckets) 0 }
    in
    m.m_samples <- m.m_samples @ [ s ];
    s

let inc ?(labels = []) m v =
  (match m.m_kind with
  | Histogram -> invalid_arg "Registry.inc: histogram (use observe)"
  | Counter when v < 0.0 ->
    invalid_arg "Registry.inc: negative increment on counter"
  | Counter | Gauge -> ());
  let s = sample m labels in
  s.s_value <- s.s_value +. v

let set ?(labels = []) m v =
  (match m.m_kind with
  | Histogram -> invalid_arg "Registry.set: histogram (use observe)"
  | Counter | Gauge -> ());
  let s = sample m labels in
  s.s_value <- v

let observe ?(labels = []) m v =
  (match m.m_kind with
  | Histogram -> ()
  | Counter | Gauge -> invalid_arg "Registry.observe: not a histogram");
  let s = sample m labels in
  s.s_count <- s.s_count + 1;
  s.s_value <- s.s_value +. v;
  (* per-bucket counts: only the first bucket that fits; the exporters
     prefix-sum into the cumulative form OpenMetrics wants *)
  let n = Array.length m.m_buckets in
  let rec place i =
    if i < n then
      if v <= m.m_buckets.(i) then s.s_buckets.(i) <- s.s_buckets.(i) + 1
      else place (i + 1)
  in
  place 0

let value ?(labels = []) m =
  let labels = normalize_labels labels in
  Option.map
    (fun s -> s.s_value)
    (List.find_opt (fun s -> s.s_labels = labels) m.m_samples)

let metric_names t = List.map (fun m -> m.m_name) t.metrics

(* --- export ------------------------------------------------------------ *)

(* Integral values print without a fraction so counters read as counts;
   everything else uses %g (shortest round-trippable-enough form). *)
let number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_set labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) labels)
    ^ "}"

(* Cumulative bucket counts, as OpenMetrics requires (`le` buckets each
   include everything below them, and +Inf equals the total count). *)
let cumulative s =
  let acc = ref 0 in
  Array.map
    (fun c ->
      acc := !acc + c;
      !acc)
    s.s_buckets

let to_text t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun m ->
      if m.m_help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" m.m_name (escape m.m_help));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" m.m_name (kind_name m.m_kind));
      List.iter
        (fun s ->
          match m.m_kind with
          | Counter | Gauge ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" m.m_name (label_set s.s_labels)
                 (number s.s_value))
          | Histogram ->
            let cum = cumulative s in
            Array.iteri
              (fun i le ->
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" m.m_name
                     (label_set (s.s_labels @ [ "le", number le ]))
                     cum.(i)))
              m.m_buckets;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" m.m_name
                 (label_set (s.s_labels @ [ "le", "+Inf" ]))
                 s.s_count);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" m.m_name (label_set s.s_labels)
                 (number s.s_value));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" m.m_name
                 (label_set s.s_labels) s.s_count))
        m.m_samples)
    t.metrics;
  Buffer.contents buf

let json_str s = "\"" ^ escape s ^ "\""

let labels_json labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_str k ^ ":" ^ json_str v) labels)
  ^ "}"

let sample_json m s =
  match m.m_kind with
  | Counter | Gauge ->
    Printf.sprintf "{\"labels\":%s,\"value\":%s}" (labels_json s.s_labels)
      (number s.s_value)
  | Histogram ->
    let cum = cumulative s in
    let buckets =
      String.concat ","
        (Array.to_list
           (Array.mapi
              (fun i le ->
                Printf.sprintf "{\"le\":%s,\"count\":%d}"
                  (json_str (number le))
                  cum.(i))
              m.m_buckets)
        @ [ Printf.sprintf "{\"le\":\"+Inf\",\"count\":%d}" s.s_count ])
    in
    Printf.sprintf
      "{\"labels\":%s,\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
      (labels_json s.s_labels) s.s_count (number s.s_value) buckets

let to_json t =
  "["
  ^ String.concat ","
      (List.map
         (fun m ->
           Printf.sprintf
             "{\"name\":%s,\"type\":%s,\"help\":%s,\"samples\":[%s]}"
             (json_str m.m_name)
             (json_str (kind_name m.m_kind))
             (json_str m.m_help)
             (String.concat "," (List.map (sample_json m) m.m_samples)))
         t.metrics)
  ^ "]"
