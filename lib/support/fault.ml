(* Deterministic device-fault injection.

   The runtime's safety story is that device artifacts are an
   optimization, never a requirement: the frontend lowers the whole
   program to bytecode, so every task always has a CPU implementation.
   To test that story end to end, this module lets a run declare a
   *fault schedule* — which device models fail, on which segments, on
   which invocations — and the device models call {!check} at the top
   of every launch. Decisions are pure functions of (schedule seed,
   device, segment, invocation count), driven by the same xorshift
   generator as the workload inputs ({!Rng}), so a seeded run injects
   the identical fault sequence every time. *)

type info = {
  f_device : string;
  f_segment : string;
  f_invocation : int;
  f_reason : string;
}

exception Device_fault of info

type when_ =
  | Always
  | First_n of int
  | At of int list
  | Prob of float

type clause = { c_device : string; c_segment : string; c_when : when_ }
type schedule = { seed : int64; clauses : clause list }

let devices = [ "gpu"; "fpga"; "native"; "wire"; "*" ]

(* --- spec parsing ------------------------------------------------------ *)

(* SPEC    := CLAUSE (',' CLAUSE)* [',' 'seed=' INT]
   CLAUSE  := DEVICE ':' SEGMENT [':' WHEN]
   DEVICE  := 'gpu' | 'fpga' | 'native' | 'wire' | '*'
   SEGMENT := literal uid | '*' | prefix '*'
   WHEN    := 'always' | 'n=' INT | 'at=' INT ('/' INT)* | 'p=' FLOAT *)

let parse_when s : (when_, string) result =
  if s = "always" then Ok Always
  else
    match String.index_opt s '=' with
    | None -> Error (Printf.sprintf "unknown fault trigger %S" s)
    | Some i -> (
      let key = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match key with
      | "n" -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> Ok (First_n n)
        | _ -> Error (Printf.sprintf "bad fault count %S" v))
      | "at" -> (
        let parts = String.split_on_char '/' v in
        match
          List.map
            (fun p -> match int_of_string_opt p with Some i when i >= 0 -> i | _ -> -1)
            parts
        with
        | xs when List.for_all (fun i -> i >= 0) xs && xs <> [] -> Ok (At xs)
        | _ -> Error (Printf.sprintf "bad invocation list %S" v))
      | "p" -> (
        match float_of_string_opt v with
        | Some p when p >= 0.0 && p <= 1.0 -> Ok (Prob p)
        | _ -> Error (Printf.sprintf "bad fault probability %S" v))
      | _ -> Error (Printf.sprintf "unknown fault trigger %S" s))

let parse_clause s : (clause, string) result =
  match String.split_on_char ':' s with
  | ([ _; "" ] | [ _; ""; _ ]) ->
    Error (Printf.sprintf "empty segment pattern in clause %S" s)
  | [ device; segment ] | [ device; segment; "" ] ->
    if List.mem device devices then
      Ok { c_device = device; c_segment = segment; c_when = Always }
    else Error (Printf.sprintf "unknown device %S" device)
  | [ device; segment; w ] -> (
    if not (List.mem device devices) then
      Error (Printf.sprintf "unknown device %S" device)
    else
      match parse_when w with
      | Ok when_ -> Ok { c_device = device; c_segment = segment; c_when = when_ }
      | Error e -> Error e)
  | _ -> Error (Printf.sprintf "malformed fault clause %S (want DEVICE:SEGMENT[:WHEN])" s)

let parse_spec spec : (schedule, string) result =
  let parts =
    List.filter (fun s -> s <> "") (String.split_on_char ',' (String.trim spec))
  in
  if parts = [] then Error "empty fault spec"
  else
    let rec go seed clauses = function
      | [] ->
        if clauses = [] then Error "fault spec has no clauses"
        else Ok { seed; clauses = List.rev clauses }
      | part :: rest ->
        if String.length part > 5 && String.sub part 0 5 = "seed=" then
          match
            Int64.of_string_opt (String.sub part 5 (String.length part - 5))
          with
          | Some s -> go s clauses rest
          | None -> Error (Printf.sprintf "bad seed in %S" part)
        else (
          match parse_clause part with
          | Ok c -> go seed (c :: clauses) rest
          | Error e -> Error e)
    in
    go 0x5EEDL [] parts

let describe_when = function
  | Always -> "always"
  | First_n n -> Printf.sprintf "n=%d" n
  | At xs -> "at=" ^ String.concat "/" (List.map string_of_int xs)
  | Prob p -> Printf.sprintf "p=%g" p

let describe (s : schedule) =
  String.concat ","
    (List.map
       (fun c ->
         Printf.sprintf "%s:%s:%s" c.c_device c.c_segment (describe_when c.c_when))
       s.clauses)
  ^ Printf.sprintf ",seed=%Ld" s.seed

(* --- the process-wide schedule ----------------------------------------- *)

let current : schedule option ref = ref None
let counters : (string, int) Hashtbl.t = Hashtbl.create 32
let injected_count = ref 0

let install s =
  current := Some s;
  Hashtbl.reset counters;
  injected_count := 0

let clear () =
  current := None;
  Hashtbl.reset counters;
  injected_count := 0

let active () = !current
let enabled () = !current <> None
let injected () = !injected_count

let without f =
  match !current with
  | None -> f ()
  | Some sched ->
    current := None;
    Fun.protect ~finally:(fun () -> current := Some sched) f

(* --- the decision ------------------------------------------------------ *)

let segment_matches pat seg =
  pat = "*" || pat = seg
  || String.length pat > 0
     && pat.[String.length pat - 1] = '*'
     &&
     let p = String.sub pat 0 (String.length pat - 1) in
     String.length seg >= String.length p
     && String.sub seg 0 (String.length p) = p

(* A probabilistic clause draws one uniform value from an Rng seeded by
   (schedule seed, device, segment, invocation): deterministic per
   decision point, uncorrelated across points. *)
let prob_draw (sched : schedule) ~device ~segment ~invocation =
  let h = Hashtbl.hash (device, segment, invocation) in
  let rng = Rng.create ~seed:(Int64.logxor sched.seed (Int64.of_int (h + 1))) () in
  ignore (Rng.next rng);
  (* one warm-up step decorrelates the similar seeds *)
  Rng.float rng

let decide sched ~device ~segment ~invocation (c : clause) =
  match c.c_when with
  | Always -> true
  | First_n n -> invocation < n
  | At xs -> List.mem invocation xs
  | Prob p -> prob_draw sched ~device ~segment ~invocation < p

(* Advance [segment]'s invocation counter and report the invocation
   number if the schedule says this launch faults. Split from the
   raise so a fused launch can consult several alias names without the
   first hit short-circuiting the others' counters. *)
let decide_one ~device ~segment : int option =
  match !current with
  | None -> None
  | Some sched ->
    let key = device ^ "\x00" ^ segment in
    let invocation = Option.value (Hashtbl.find_opt counters key) ~default:0 in
    Hashtbl.replace counters key (invocation + 1);
    let hit =
      List.exists
        (fun c ->
          (c.c_device = "*" || c.c_device = device)
          && segment_matches c.c_segment segment
          && decide sched ~device ~segment ~invocation c)
        sched.clauses
    in
    if hit then Some invocation else None

let inject ~device ~segment ~invocation =
  incr injected_count;
  if Trace.enabled () then
    Trace.instant ~cat:"fault"
      ~args:
        [
          "device", Trace.Str device;
          "segment", Trace.Str segment;
          "invocation", Trace.Int invocation;
        ]
      ("inject:" ^ device);
  raise
    (Device_fault
       {
         f_device = device;
         f_segment = segment;
         f_invocation = invocation;
         f_reason =
           Printf.sprintf "injected fault on %s:%s (invocation %d)" device
             segment invocation;
       })

let check ~device ~segment =
  match decide_one ~device ~segment with
  | Some invocation -> inject ~device ~segment ~invocation
  | None -> ()

let check_any ~device segments =
  let hits =
    List.filter_map
      (fun segment ->
        Option.map (fun inv -> (segment, inv)) (decide_one ~device ~segment))
      segments
  in
  match hits with
  | (segment, invocation) :: _ -> inject ~device ~segment ~invocation
  | [] -> ()
