(* A tiny deterministic generator (xorshift64) shared by the workload
   input generators and the fault-injection schedule, so every run sees
   identical pseudo-random decisions independent of the OCaml stdlib
   Random state. *)

type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () =
  { state = (if seed = 0L then 1L else seed) }

let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  x

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let float t =
  (* uniform in [0, 1) with 30 bits of entropy, exactly representable
     in single precision terms after Value.f32 *)
  float_of_int (int t (1 lsl 30)) /. float_of_int (1 lsl 30)

let float_range t lo hi = lo +. ((hi -. lo) *. float t)
let int_array t n ~bound = Array.init n (fun _ -> int t bound)
let bool_array t n = Array.init n (fun _ -> int t 2 = 1)
