type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* Percentile by linear interpolation between closest ranks on the
   sorted sample (the h = q*(n-1) convention, as numpy's default).
   NaN is rejected on both sides: a NaN sample would poison the sort
   order silently, and a NaN [q] slips through naive [q < 0 || q > 1]
   range checks (both comparisons are false), so the guard is written
   as a positive containment test. *)
let percentile_sorted (sorted : float array) q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Stats.percentile: q outside [0,1]";
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  (* exact rank: no interpolation, so infinite samples stay infinite
     instead of evaluating inf +. 0. *. (inf -. inf) = nan *)
  if frac = 0.0 || lo = hi then sorted.(lo)
  else sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let reject_nan ~what xs =
  if List.exists Float.is_nan xs then
    invalid_arg (Printf.sprintf "Stats.%s: NaN sample" what)

let percentile xs q =
  reject_nan ~what:"percentile" xs;
  let sorted = Array.of_list xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted q

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty"
  | xs ->
    reject_nan ~what:"summarize" xs;
    let count = List.length xs in
    let n = float_of_int count in
    let mean = List.fold_left ( +. ) 0.0 xs /. n in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. n
    in
    let sorted = Array.of_list xs in
    Array.sort Float.compare sorted;
    {
      count;
      mean;
      stddev = sqrt var;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
      p50 = percentile_sorted sorted 0.50;
      p95 = percentile_sorted sorted 0.95;
      p99 = percentile_sorted sorted 0.99;
    }

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty"
  | xs ->
    if List.exists (fun x -> x <= 0.0) xs then
      invalid_arg "Stats.geomean: non-positive entry";
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

module Table = struct
  type t = { columns : string list; mutable rows : string list list }

  let create ~columns = { columns; rows = [] }

  let add_row t row =
    if List.length row <> List.length t.columns then
      invalid_arg "Stats.Table.add_row: column count mismatch";
    t.rows <- row :: t.rows

  let render t =
    let rows = List.rev t.rows in
    let widths =
      List.mapi
        (fun i col ->
          List.fold_left
            (fun w row -> max w (String.length (List.nth row i)))
            (String.length col) rows)
        t.columns
    in
    let buf = Buffer.create 256 in
    let pad s w = s ^ String.make (w - String.length s) ' ' in
    let emit_row cells =
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string buf "  ";
          Buffer.add_string buf (pad cell (List.nth widths i)))
        cells;
      Buffer.add_char buf '\n'
    in
    emit_row t.columns;
    List.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n';
    List.iter emit_row rows;
    Buffer.contents buf
end
