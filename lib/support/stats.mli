(** Running summary statistics and fixed-format result tables.

    The benchmark harness prints paper-style tables; keeping the layout
    code here keeps `bench/main.ml` about experiments, not formatting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;  (** median *)
  p95 : float;
  p99 : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on an empty list or a NaN sample. *)

val percentile : float list -> float -> float
(** [percentile xs q] for [q] in [[0,1]], by linear interpolation
    between closest ranks of the sorted sample. A single-sample list
    returns that sample for every [q].
    @raise Invalid_argument on an empty list, a NaN sample, or [q]
    outside [[0,1]] (NaN [q] included). *)

val geomean : float list -> float
(** Geometric mean; [Invalid_argument] on empty input or non-positive
    entries. *)

(** Fixed-width text tables. *)
module Table : sig
  type t

  val create : columns:string list -> t
  val add_row : t -> string list -> unit
  val render : t -> string
  (** Renders with a header rule, columns padded to content width. *)
end
