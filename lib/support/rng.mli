(** Deterministic pseudo-random generation (xorshift64).

    The single generator behind {!Workloads.Rng} (which re-exports it
    and adds wire-value helpers) and the {!Fault} injection schedule:
    both need reproducible streams that are independent of the OCaml
    stdlib [Random] state, so that every benchmark run and every
    injected fault sequence is identical across runs. *)

type t

val create : ?seed:int64 -> unit -> t
val next : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 30 bits of entropy. *)

val float_range : t -> float -> float -> float
val int_array : t -> int -> bound:int -> int array
val bool_array : t -> int -> bool array
