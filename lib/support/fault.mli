(** Deterministic device-fault injection.

    A *fault schedule* declares which device models fail, on which
    segments, on which invocations. The GPU and RTL simulators, the
    host/device boundary and the native segment executor call {!check}
    at the top of every launch; when the installed schedule matches,
    {!Device_fault} is raised and the runtime's failure protocol
    (retry with backoff, then dynamic re-substitution down to
    bytecode) takes over. Decisions are pure functions of
    (schedule seed, device, segment, invocation count), driven by the
    same xorshift generator as the workload inputs ({!Rng}), so a
    seeded run injects the identical fault sequence every time.

    Like {!Trace}, the schedule is process-wide and off by default:
    with nothing installed, {!check} is one match on a [ref].
    See [docs/FAULT_TOLERANCE.md]. *)

type info = {
  f_device : string;  (** ["gpu"] | ["fpga"] | ["native"] | ["wire"] *)
  f_segment : string;  (** artifact / chain uid, or the boundary label *)
  f_invocation : int;  (** 0-based launch count for (device, segment) *)
  f_reason : string;  (** human-readable description of the injection *)
}

exception Device_fault of info
(** The fault raised by an injection point. The runtime catches this —
    and only this — for retry and re-substitution; real device errors
    ([Device_error], [Simulation_error]) keep propagating. *)

type when_ =
  | Always
  | First_n of int  (** fail the first [n] invocations *)
  | At of int list  (** fail exactly these invocation indices *)
  | Prob of float  (** fail each invocation with probability [p] *)

type clause = { c_device : string; c_segment : string; c_when : when_ }
type schedule = { seed : int64; clauses : clause list }

val parse_spec : string -> (schedule, string) result
(** Grammar (see [docs/FAULT_TOLERANCE.md]):
    {v
SPEC    := CLAUSE (',' CLAUSE)* [',' 'seed=' INT]
CLAUSE  := DEVICE ':' SEGMENT [':' WHEN]
DEVICE  := 'gpu' | 'fpga' | 'native' | 'wire' | '*'
SEGMENT := literal uid | '*' | prefix '*'
WHEN    := 'always' | 'n=' INT | 'at=' INT ('/' INT)* | 'p=' FLOAT
    v}
    e.g. ["gpu:*:always"], ["fpga:Dsp*:p=0.25,seed=42"],
    ["wire:pcie:at=0/2"]. The default [WHEN] is [always]; the default
    seed is [0x5EED]. *)

val describe : schedule -> string
(** Canonical spec string for a schedule (reparses to itself). *)

val install : schedule -> unit
(** Install the process-wide schedule and reset invocation counters
    and the injected-fault count. *)

val clear : unit -> unit
(** Remove the schedule; {!check} becomes a no-op. *)

val active : unit -> schedule option
val enabled : unit -> bool

val without : (unit -> 'a) -> 'a
(** Run [f] with injection suspended (schedule and counters preserved,
    reinstalled on return or raise). Infrastructure launches — the
    placement calibrator's microbenchmarks — run under this so a
    schedule only ever charges application launches: a [n=1] budget
    must fire in the tenant's job, not inside a measurement probe. *)

val injected : unit -> int
(** Faults injected since the last {!install}/{!clear}. *)

val check : device:string -> segment:string -> unit
(** The injection hook: increments the (device, segment) invocation
    counter, and raises {!Device_fault} if any installed clause
    matches this invocation. Emits a trace instant (category
    ["fault"], name ["inject:<device>"]) when tracing is enabled. *)

val check_any : device:string -> string list -> unit
(** One launch observed under several segment names at once — a fused
    segment checking its pre-fusion aliases. Every name's invocation
    counter advances exactly once (no short-circuit skew across
    retries), then {!Device_fault} is raised for the first name whose
    clause matched, if any. *)

val segment_matches : string -> string -> bool
(** [segment_matches pattern segment] — exposed for tests. *)
