(** End-to-end tracing: spans, instants and counters from every layer.

    The compiler phases, the runtime (substitution decisions, scheduler
    steps, channel occupancy, device launches, boundary crossings) and
    the device simulators all emit events here. Collection is a bounded
    in-memory ring buffer (drop-oldest, counting drops) with two
    exporters: Chrome [trace_event] JSON — loadable in [about:tracing]
    or Perfetto — and a human-readable profile report built on
    {!Stats.Table}.

    Tracing is off by default: the installed sink is {!null} and every
    emission point first checks {!enabled}, so the disabled cost is one
    branch. Nothing here touches {!Stats} accumulation elsewhere —
    metrics keep their existing meaning whether or not a trace is being
    collected. See [docs/OBSERVABILITY.md]. *)

(** A typed event argument (rendered into the Chrome [args] object). *)
type arg = Str of string | Int of int | Float of float | Bool of bool

type event =
  | Span of {
      name : string;
      cat : string;
      ts_us : float;  (** start, microseconds since the sink was created *)
      dur_us : float;
      args : (string * arg) list;
    }  (** a completed duration span (Chrome phase ["X"]) *)
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      args : (string * arg) list;
    }  (** a point event (Chrome phase ["i"]) *)
  | Counter of { name : string; ts_us : float; values : (string * float) list }
      (** a sampled counter series (Chrome phase ["C"]) *)

type sink

val null : sink
(** The no-op sink: every emission is dropped before being built. *)

val ring : ?capacity:int -> unit -> sink
(** A bounded in-memory collector (default capacity 65536 events).
    When full, the oldest event is dropped and counted. *)

val set_sink : sink -> unit
(** Install the process-wide sink. The default is {!null}. *)

val current : unit -> sink
val enabled : unit -> bool
(** [false] iff the current sink is {!null} — the fast-path check every
    instrumentation point performs first. *)

(** {2 Emission} *)

type span
(** An open span handle from {!begin_span}; closed by {!end_span}. *)

val no_span : span
(** A permanently-closed handle; {!end_span} on it is a no-op. Lets an
    instrumentation point guard on {!enabled} without building the span
    name (often a concatenation) on the disabled path. *)

val begin_span : ?args:(string * arg) list -> cat:string -> string -> span

val end_span : ?args:(string * arg) list -> span -> unit
(** Records the completed span into the current sink; [args] given here
    are appended to those from {!begin_span} (for results only known at
    the end, e.g. artifact counts). *)

val with_span :
  ?args:(string * arg) list -> cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat name f] runs [f] inside a span; the span is
    recorded even when [f] raises. When tracing is disabled this is a
    single branch and a call to [f]. *)

val instant : ?args:(string * arg) list -> cat:string -> string -> unit
val counter : string -> (string * float) list -> unit

(** {2 Inspection (ring sinks; the null sink is always empty)} *)

val events : sink -> event list
(** Oldest first. *)

val event_count : sink -> int
val dropped : sink -> int
val clear : sink -> unit
(** Drops all buffered events and resets the drop counter. *)

(** {2 Exporters} *)

(** Chrome [trace_event] JSON (the "JSON Array Format" wrapped in an
    object), loadable in [about:tracing] and {{:https://ui.perfetto.dev}
    Perfetto}. *)
module Chrome : sig
  val to_json : ?process_name:string -> sink -> string
  (** All buffered events as one JSON document. Timestamps are
      microseconds; spans are phase ["X"], instants ["i"], counters
      ["C"]. The drop count is recorded under [otherData]. *)
end

(** The human-readable profile: per-span wall-time breakdown with
    percentiles, and per-counter (channel occupancy, boundary traffic)
    peak/mean summaries. *)
module Profile : sig
  val report : sink -> string
  (** Two {!Stats.Table}s — spans (count, total, mean, p50/p95/p99) and
      counters (samples, mean, peak, last) — preceded by an event/drop
      header line. When the ring overflowed, a truncation warning
      follows the header: the report then undercounts the run. *)
end
