(* Event/span collection for the whole toolchain and runtime.

   The collector is deliberately primitive: a bounded FIFO of already-
   built events, drop-oldest on overflow. Everything interesting —
   aggregation, percentiles, JSON — happens at export time, so the
   emission path stays cheap enough to leave compiled in everywhere. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type event =
  | Span of {
      name : string;
      cat : string;
      ts_us : float;
      dur_us : float;
      args : (string * arg) list;
    }
  | Instant of {
      name : string;
      cat : string;
      ts_us : float;
      args : (string * arg) list;
    }
  | Counter of { name : string; ts_us : float; values : (string * float) list }

type ring_state = {
  capacity : int;
  q : event Queue.t;
  mutable dropped : int;
  t0 : float;  (* gettimeofday at sink creation; timestamps are relative *)
}

type sink = Null | Ring of ring_state

let null = Null

let ring ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.ring: capacity < 1";
  Ring
    { capacity; q = Queue.create (); dropped = 0; t0 = Unix.gettimeofday () }

let sink_ = ref Null
let set_sink s = sink_ := s
let current () = !sink_
let enabled () = match !sink_ with Null -> false | Ring _ -> true

let now_us (r : ring_state) = (Unix.gettimeofday () -. r.t0) *. 1e6

let emit (e : event) =
  match !sink_ with
  | Null -> ()
  | Ring r ->
    if Queue.length r.q >= r.capacity then begin
      ignore (Queue.pop r.q);
      r.dropped <- r.dropped + 1
    end;
    Queue.push e r.q

(* --- emission --------------------------------------------------------- *)

type span =
  | S_disabled
  | S_open of {
      name : string;
      cat : string;
      ts_us : float;
      args : (string * arg) list;
    }

let no_span = S_disabled

let begin_span ?(args = []) ~cat name =
  match !sink_ with
  | Null -> S_disabled
  | Ring r -> S_open { name; cat; ts_us = now_us r; args }

let end_span ?(args = []) span =
  match span, !sink_ with
  | S_disabled, _ | _, Null -> ()
  | S_open s, Ring r ->
    emit
      (Span
         {
           name = s.name;
           cat = s.cat;
           ts_us = s.ts_us;
           dur_us = now_us r -. s.ts_us;
           args = s.args @ args;
         })

let with_span ?args ~cat name f =
  match !sink_ with
  | Null -> f ()
  | Ring _ ->
    let sp = begin_span ?args ~cat name in
    let r = try f () with e -> end_span sp; raise e in
    end_span sp;
    r

let instant ?(args = []) ~cat name =
  match !sink_ with
  | Null -> ()
  | Ring r -> emit (Instant { name; cat; ts_us = now_us r; args })

let counter name values =
  match !sink_ with
  | Null -> ()
  | Ring r -> emit (Counter { name; ts_us = now_us r; values })

(* --- inspection ------------------------------------------------------- *)

let events = function
  | Null -> []
  | Ring r -> List.of_seq (Queue.to_seq r.q)

let event_count = function Null -> 0 | Ring r -> Queue.length r.q
let dropped = function Null -> 0 | Ring r -> r.dropped

let clear = function
  | Null -> ()
  | Ring r ->
    Queue.clear r.q;
    r.dropped <- 0

(* --- Chrome trace_event JSON ------------------------------------------ *)

module Chrome = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let str s = "\"" ^ escape s ^ "\""

  (* %.3f keeps nanosecond resolution on the microsecond timeline and
     never produces NaN/inf or exponent notation (invalid JSON risks). *)
  let num f = Printf.sprintf "%.3f" f

  let arg_json = function
    | Str s -> str s
    | Int i -> string_of_int i
    | Float f -> num f
    | Bool b -> if b then "true" else "false"

  let args_json args =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> str k ^ ":" ^ arg_json v) args)
    ^ "}"

  let event_json = function
    | Span { name; cat; ts_us; dur_us; args } ->
      Printf.sprintf
        "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":1,\"args\":%s}"
        (str name) (str cat) (num ts_us) (num dur_us) (args_json args)
    | Instant { name; cat; ts_us; args } ->
      Printf.sprintf
        "{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":1,\"tid\":1,\"args\":%s}"
        (str name) (str cat) (num ts_us) (args_json args)
    | Counter { name; ts_us; values } ->
      Printf.sprintf
        "{\"name\":%s,\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"tid\":1,\"args\":%s}"
        (str name) (num ts_us)
        (args_json (List.map (fun (k, v) -> k, Float v) values))

  let to_json ?(process_name = "liquid-metal") sink =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"traceEvents\":[";
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":%s}}"
         (str process_name));
    List.iter
      (fun e ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (event_json e))
      (events sink);
    Buffer.add_string buf "],\"displayTimeUnit\":\"ns\",";
    Buffer.add_string buf
      (Printf.sprintf "\"otherData\":{\"droppedEvents\":%d}}" (dropped sink));
    Buffer.contents buf
end

(* --- profile report --------------------------------------------------- *)

module Profile = struct
  (* Group in first-seen order: the report reads top-to-bottom in the
     order work actually happened. *)
  let group_fold key_of add init es =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun e ->
        match key_of e with
        | None -> ()
        | Some key ->
          let acc =
            match Hashtbl.find_opt tbl key with
            | Some acc -> acc
            | None ->
              order := key :: !order;
              init
          in
          Hashtbl.replace tbl key (add acc e))
      es;
    List.rev_map (fun key -> key, Hashtbl.find tbl key) !order

  let us f = Printf.sprintf "%.1f" f

  let report sink =
    let es = events sink in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "profile: %d event(s) collected, %d dropped\n"
         (List.length es) (dropped sink));
    if dropped sink > 0 then
      Buffer.add_string buf
        (Printf.sprintf
           "warning: trace truncated — the oldest %d event(s) were dropped; \
            totals below undercount the run\n"
           (dropped sink));
    (* spans: wall-time breakdown with percentiles *)
    let spans =
      group_fold
        (function
          | Span { name; cat; _ } -> Some (cat, name)
          | Instant _ | Counter _ -> None)
        (fun acc e ->
          match e with
          | Span { dur_us; _ } -> dur_us :: acc
          | Instant _ | Counter _ -> acc)
        [] es
      |> List.map (fun (key, durs_rev) -> key, List.rev durs_rev)
    in
    if spans <> [] then begin
      Buffer.add_string buf "\nspans (wall time, us):\n";
      let t =
        Stats.Table.create
          ~columns:
            [ "cat"; "span"; "count"; "total"; "mean"; "p50"; "p95"; "p99" ]
      in
      List.iter
        (fun ((cat, name), durs) ->
          let s = Stats.summarize durs in
          Stats.Table.add_row t
            [
              cat;
              name;
              string_of_int s.Stats.count;
              us (s.Stats.mean *. float_of_int s.Stats.count);
              us s.Stats.mean;
              us s.Stats.p50;
              us s.Stats.p95;
              us s.Stats.p99;
            ])
        spans;
      Buffer.add_string buf (Stats.Table.render t)
    end;
    (* instants: substitution decisions, scheduler steps, ... *)
    let instants =
      group_fold
        (function
          | Instant { name; cat; _ } -> Some (cat, name)
          | Span _ | Counter _ -> None)
        (fun acc _ -> acc + 1)
        0 es
    in
    if instants <> [] then begin
      Buffer.add_string buf "\nevents:\n";
      let t = Stats.Table.create ~columns:[ "cat"; "event"; "count" ] in
      List.iter
        (fun ((cat, name), count) ->
          Stats.Table.add_row t [ cat; name; string_of_int count ])
        instants;
      Buffer.add_string buf (Stats.Table.render t)
    end;
    (* counters: channel occupancy, boundary traffic, ... *)
    let counters =
      group_fold
        (function Counter { name; _ } -> Some name | Span _ | Instant _ -> None)
        (fun acc e ->
          match e with
          | Counter { values; _ } -> values :: acc
          | Span _ | Instant _ -> acc)
        [] es
    in
    if counters <> [] then begin
      Buffer.add_string buf "\ncounters:\n";
      let t =
        Stats.Table.create
          ~columns:[ "counter"; "key"; "samples"; "mean"; "peak"; "last" ]
      in
      List.iter
        (fun (name, samples_rev) ->
          let samples = List.rev samples_rev in
          (* keys in first-seen order within the series *)
          let keys =
            List.fold_left
              (fun keys values ->
                List.fold_left
                  (fun keys (k, _) ->
                    if List.mem k keys then keys else keys @ [ k ])
                  keys values)
              [] samples
          in
          List.iter
            (fun key ->
              let xs = List.filter_map (List.assoc_opt key) samples in
              if xs <> [] then begin
                let s = Stats.summarize xs in
                let last = List.nth xs (List.length xs - 1) in
                Stats.Table.add_row t
                  [
                    name;
                    key;
                    string_of_int s.Stats.count;
                    Printf.sprintf "%.1f" s.Stats.mean;
                    Printf.sprintf "%.1f" s.Stats.max;
                    Printf.sprintf "%.1f" last;
                  ]
              end)
            keys)
        counters;
      Buffer.add_string buf (Stats.Table.render t)
    end;
    Buffer.contents buf
end
