module Ir = Lime_ir.Ir

(* OpenCL C code generation.

   "The former generates OpenCL for the GPU" (paper section 3). The
   generated source is the textual artifact stored in the manifest;
   since no physical GPU exists in this environment, execution is
   performed by the SIMT simulator (Simt), which consumes the same
   kernel IR the text was generated from. The text is nevertheless
   complete, self-contained OpenCL C: a device function per reachable
   callee plus one [__kernel] entry per map/reduce/filter site. *)

let sanitize key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    key

let cty = function
  | Ir.I32 -> "int"
  | Ir.F32 -> "float"
  | Ir.Bool -> "int"
  | Ir.Bit -> "uchar"
  | Ir.Enum _ -> "int"
  | Ir.Arr t -> (
    match t with
    | Ir.I32 -> "__global int*"
    | Ir.F32 -> "__global float*"
    | Ir.Bool -> "__global int*"
    | Ir.Bit -> "__global uchar*"
    | Ir.Enum _ -> "__global int*"
    | _ -> "__global void*")
  | Ir.Obj _ | Ir.Graph -> "void*"
  | Ir.Unit -> "void"

let var_name (v : Ir.var) = Printf.sprintf "v%d_%s" v.v_id (sanitize v.v_name)

let const_text (c : Ir.const) =
  match c with
  | Ir.C_unit -> "0"
  | Ir.C_bool b -> if b then "1" else "0"
  | Ir.C_i32 i -> string_of_int i
  | Ir.C_f32 f -> Printf.sprintf "%.9gf" f
  | Ir.C_bit b -> if b then "1" else "0"
  | Ir.C_enum (_, tag) -> string_of_int tag
  | Ir.C_bits _ -> "/* bit literal (host only) */ 0"

let operand_text (o : Ir.operand) =
  match o with
  | Ir.O_var v -> var_name v
  | Ir.O_const c -> const_text c

let unop_text (u : Ir.unop) a =
  match u with
  | Ir.Neg_i | Ir.Neg_f -> Printf.sprintf "(-%s)" a
  | Ir.Not_b -> Printf.sprintf "(!%s)" a
  | Ir.Bnot_i -> Printf.sprintf "(~%s)" a
  | Ir.I2f -> Printf.sprintf "((float)%s)" a

let binop_text (b : Ir.binop) x y =
  let infix op = Printf.sprintf "(%s %s %s)" x op y in
  match b with
  | Ir.Add_i | Ir.Add_f -> infix "+"
  | Ir.Sub_i | Ir.Sub_f -> infix "-"
  | Ir.Mul_i | Ir.Mul_f -> infix "*"
  | Ir.Div_i | Ir.Div_f -> infix "/"
  | Ir.Rem_i -> infix "%"
  | Ir.Rem_f -> Printf.sprintf "fmod(%s, %s)" x y
  | Ir.Shl_i -> infix "<<"
  | Ir.Shr_i -> infix ">>"
  | Ir.And_i -> infix "&"
  | Ir.Or_i -> infix "|"
  | Ir.Xor_i -> infix "^"
  | Ir.And_b | Ir.And_bit -> infix "&&"
  | Ir.Or_b | Ir.Or_bit -> infix "||"
  | Ir.Xor_b | Ir.Xor_bit -> infix "^"
  | Ir.Eq -> infix "=="
  | Ir.Neq -> infix "!="
  | Ir.Lt_i | Ir.Lt_f -> infix "<"
  | Ir.Leq_i | Ir.Leq_f -> infix "<="
  | Ir.Gt_i | Ir.Gt_f -> infix ">"
  | Ir.Geq_i | Ir.Geq_f -> infix ">="

let rhs_text (r : Ir.rhs) =
  match r with
  | Ir.R_op o -> operand_text o
  | Ir.R_unop (u, a) -> unop_text u (operand_text a)
  | Ir.R_binop (b, x, y) -> binop_text b (operand_text x) (operand_text y)
  | Ir.R_alen _ -> "/* array length passed as kernel argument */ 0"
  | Ir.R_aload (a, i) ->
    Printf.sprintf "%s[%s]" (operand_text a) (operand_text i)
  | Ir.R_call (key, args) ->
    let callee =
      if Lime_ir.Intrinsics.is_intrinsic key then
        Lime_ir.Intrinsics.opencl_name key
      else sanitize key
    in
    Printf.sprintf "%s(%s)" callee
      (String.concat ", " (List.map operand_text args))
  | Ir.R_newarr _ | Ir.R_freeze _ | Ir.R_newobj _ | Ir.R_field _ | Ir.R_map _
  | Ir.R_reduce _ | Ir.R_mkgraph _ ->
    "/* unsupported on device */ 0"

(* [proven] marks array accesses (by physical instruction) whose
   bounds proof was discharged statically; they carry an
   [/* unguarded */] comment so the artifact records exactly which
   loads/stores a real driver could run without instrumentation. *)
let rec block_text proven indent (b : Ir.block) =
  String.concat "" (List.map (instr_text proven indent) b)

and instr_text proven indent (i : Ir.instr) =
  let pad = String.make indent ' ' in
  match i with
  | Ir.I_let (v, r) | Ir.I_set (v, r) ->
    let mark =
      match r with
      | Ir.R_aload _ when proven i -> " /* unguarded */"
      | _ -> ""
    in
    Printf.sprintf "%s%s = %s;%s\n" pad (var_name v) (rhs_text r) mark
  | Ir.I_astore (a, idx, x) ->
    let mark = if proven i then " /* unguarded */" else "" in
    Printf.sprintf "%s%s[%s] = %s;%s\n" pad (operand_text a)
      (operand_text idx) (operand_text x) mark
  | Ir.I_setfield _ -> pad ^ "/* field write: unsupported */\n"
  | Ir.I_if (c, a, b) ->
    Printf.sprintf "%sif (%s) {\n%s%s} else {\n%s%s}\n" pad (operand_text c)
      (block_text proven (indent + 2) a)
      pad
      (block_text proven (indent + 2) b)
      pad
  | Ir.I_while (cond_block, cond_op, body) ->
    (* The condition block recomputes temporaries each iteration. *)
    Printf.sprintf "%sfor (;;) {\n%s%sif (!%s) break;\n%s%s}\n" pad
      (block_text proven (indent + 2) cond_block)
      (String.make (indent + 2) ' ')
      (operand_text cond_op)
      (block_text proven (indent + 2) body)
      pad
  | Ir.I_return (Some o) -> Printf.sprintf "%sreturn %s;\n" pad (operand_text o)
  | Ir.I_return None -> pad ^ "return;\n"
  | Ir.I_run_graph _ -> pad ^ "/* nested graph: unsupported */\n"
  | Ir.I_do r ->
    let mark =
      match r with
      | Ir.R_aload _ when proven i -> " /* unguarded */"
      | _ -> ""
    in
    Printf.sprintf "%s(void)(%s);%s\n" pad (rhs_text r) mark

(* Declarations for every virtual register assigned in the body. *)
let local_decls (fn : Ir.func) =
  let params = List.map (fun (v : Ir.var) -> v.v_id) fn.fn_params in
  let decls = Hashtbl.create 16 in
  let rec scan_block b = List.iter scan_instr b
  and scan_instr = function
    | Ir.I_let (v, _) | Ir.I_set (v, _) ->
      if not (List.mem v.Ir.v_id params) then
        Hashtbl.replace decls v.Ir.v_id v
    | Ir.I_if (_, a, b) ->
      scan_block a;
      scan_block b
    | Ir.I_while (c, _, body) ->
      scan_block c;
      scan_block body
    | Ir.I_astore _ | Ir.I_setfield _ | Ir.I_return _ | Ir.I_run_graph _
    | Ir.I_do _ ->
      ()
  in
  scan_block fn.fn_body;
  Hashtbl.fold (fun _ v acc -> v :: acc) decls []
  |> List.sort (fun (a : Ir.var) b -> compare a.v_id b.v_id)

(* The banner reports how many array accesses the relational analysis
   proved in bounds — all of them or [k of n], so partial proofs are
   visible in the artifact rather than rounding down to silence. The
   proven accesses themselves carry [/* unguarded */] at the access
   site. *)
let bounds_banner (facts : Analysis.Symbolic.fn_facts) =
  let n = facts.Analysis.Symbolic.sf_total in
  let k = facts.Analysis.Symbolic.sf_proven in
  if n = 0 || k = 0 then ""
  else if k = n then
    Printf.sprintf "/* bounds: all %d array access(es) proven in bounds */\n" n
  else
    Printf.sprintf "/* bounds: %d of %d array access(es) proven in bounds */\n"
      k n

let device_function_text (prog : Ir.program) (fn : Ir.func) =
  let facts = Analysis.Symbolic.analyze_fn prog fn in
  let proven = Analysis.Symbolic.fn_prover facts in
  let params =
    String.concat ", "
      (List.map
         (fun (v : Ir.var) -> Printf.sprintf "%s %s" (cty v.v_ty) (var_name v))
         fn.fn_params)
  in
  let decls =
    String.concat ""
      (List.map
         (fun (v : Ir.var) ->
           Printf.sprintf "  %s %s;\n" (cty v.Ir.v_ty) (var_name v))
         (local_decls fn))
  in
  Printf.sprintf "%sstatic %s %s(%s) {\n%s%s}\n" (bounds_banner facts)
    (cty fn.fn_ret) (sanitize fn.fn_key) params decls
    (block_text proven 2 fn.fn_body)

(* A map site becomes an elementwise kernel: mapped arguments arrive as
   global arrays indexed by the work-item id, broadcast arguments as
   scalars. *)
let map_kernel_text (prog : Ir.program) (site : Ir.map_site) =
  let intrinsic = Lime_ir.Intrinsics.is_intrinsic site.map_fn in
  (* Parameter element types: from the target function when it has a
     body, all-float for Math intrinsics. *)
  let param_tys =
    if intrinsic then List.map (fun _ -> Ir.F32) site.map_args
    else
      List.map (fun (p : Ir.var) -> p.v_ty) (Ir.func_exn prog site.map_fn).fn_params
  in
  let fns =
    if intrinsic then ""
    else
      String.concat "\n"
        (List.map
           (fun key -> device_function_text prog (Ir.func_exn prog key))
           (Suitability.callees prog site.map_fn))
  in
  let params =
    List.mapi
      (fun i ((_, mapped), pty) ->
        if mapped then Printf.sprintf "__global const %s* a%d" (cty pty) i
        else Printf.sprintf "const %s a%d" (cty pty) i)
      (List.combine site.map_args param_tys)
  in
  let args =
    List.mapi
      (fun i (_, mapped) ->
        if mapped then Printf.sprintf "a%d[gid]" i else Printf.sprintf "a%d" i)
      site.map_args
  in
  Printf.sprintf
    "%s\n__kernel void %s(%s, __global %s* out, const int n) {\n\
    \  int gid = get_global_id(0);\n\
    \  if (gid < n) {\n\
    \    out[gid] = %s(%s);\n\
    \  }\n\
     }\n"
    fns (sanitize site.map_uid)
    (String.concat ", " params)
    (cty site.map_elem_ty)
    (if Lime_ir.Intrinsics.is_intrinsic site.map_fn then
       Lime_ir.Intrinsics.opencl_name site.map_fn
     else sanitize site.map_fn)
    (String.concat ", " args)

(* A reduce site becomes the standard two-stage tree reduction. *)
let reduce_kernel_text (prog : Ir.program) (site : Ir.reduce_site) =
  let fns =
    if Lime_ir.Intrinsics.is_intrinsic site.red_fn then ""
    else
      String.concat "\n"
        (List.map
           (fun key -> device_function_text prog (Ir.func_exn prog key))
           (Suitability.callees prog site.red_fn))
  in
  let t = cty site.red_elem_ty in
  Printf.sprintf
    "%s\n\
     __kernel void %s(__global const %s* in, __global %s* out, const int n,\n\
    \                 __local %s* scratch) {\n\
    \  int gid = get_global_id(0);\n\
    \  int lid = get_local_id(0);\n\
    \  scratch[lid] = in[min(gid, n - 1)];\n\
    \  barrier(CLK_LOCAL_MEM_FENCE);\n\
    \  for (int stride = get_local_size(0) / 2; stride > 0; stride >>= 1) {\n\
    \    if (lid < stride && gid + stride < n) {\n\
    \      scratch[lid] = %s(scratch[lid], scratch[lid + stride]);\n\
    \    }\n\
    \    barrier(CLK_LOCAL_MEM_FENCE);\n\
    \  }\n\
    \  if (lid == 0) out[get_group_id(0)] = scratch[0];\n\
     }\n"
    fns (sanitize site.red_uid) t t t
    (if Lime_ir.Intrinsics.is_intrinsic site.red_fn then
       Lime_ir.Intrinsics.opencl_name site.red_fn
     else sanitize site.red_fn)

(* A relocatable filter (or fused chain of filters) becomes an
   elementwise kernel over the stream, since pure filters admit
   data-parallel execution (paper section 2.1). *)
let filter_kernel_text (prog : Ir.program) ~uid (chain : string list)
    ~(input : Ir.ty) ~(output : Ir.ty) =
  let callee_keys =
    List.concat_map (fun key -> Suitability.callees prog key) chain
    |> List.fold_left
         (fun (seen, acc) k ->
           if List.mem k seen then seen, acc else k :: seen, k :: acc)
         ([], [])
    |> fun (_, acc) -> List.rev acc
  in
  let fns =
    String.concat "\n"
      (List.map
         (fun key -> device_function_text prog (Ir.func_exn prog key))
         callee_keys)
  in
  let composed =
    List.fold_left
      (fun acc key -> Printf.sprintf "%s(%s)" (sanitize key) acc)
      "in[gid]" chain
  in
  Printf.sprintf
    "%s\n__kernel void %s(__global const %s* in, __global %s* out, const int n) {\n\
    \  int gid = get_global_id(0);\n\
    \  if (gid < n) {\n\
    \    out[gid] = %s;\n\
    \  }\n\
     }\n"
    fns (sanitize uid) (cty input) (cty output) composed
