(** OpenCL C code generation (paper section 3: "generates OpenCL for
    the GPU").

    The generated source is the textual artifact stored in the
    manifest. In this environment no OpenCL runtime exists, so
    execution is performed by {!Simt} over the same kernel IR; the
    text is nevertheless complete, self-contained OpenCL C (device
    functions for every reachable callee plus one [__kernel] per
    site), with [Math] intrinsics mapped to the native spellings. *)

module Ir = Lime_ir.Ir

val map_kernel_text : Ir.program -> Ir.map_site -> string
(** Elementwise kernel: mapped arguments as [__global] arrays indexed
    by the work-item id, broadcast arguments as scalars. *)

val reduce_kernel_text : Ir.program -> Ir.reduce_site -> string
(** The standard two-stage local-memory tree reduction. *)

val filter_kernel_text :
  Ir.program ->
  uid:string ->
  string list ->
  input:Ir.ty ->
  output:Ir.ty ->
  string
(** A fused elementwise kernel over a chain of pure filters (the GPU
    form of a substituted task subgraph). *)

val device_function_text : Ir.program -> Ir.func -> string
(** One [static] device function (exposed for tests). Prefixed with a
    bounds banner counting how many array accesses the relational
    analysis proved in bounds ([all n] or [k of n]); each proven
    access is marked [/* unguarded */] at its load/store site. *)
