(** GPU backend exclusion analysis (paper section 3).

    "A task containing language constructs that are not suitable for
    the device is excluded from further compilation by that backend."
    The GPU accepts data-parallel code — functions over scalars and
    arrays of scalars (loops included), calling only other suitable
    functions or [Math] intrinsics. Eligibility is effect-driven
    ({!Analysis.Effects}): a [global] method that provably performs no
    side effect is accepted, and every exclusion reason names the
    offending effect with its witness call chain and source location.
    Object state, dynamic allocation, and nested task/map/reduce
    constructs remain excluded. *)

module Ir = Lime_ir.Ir

type verdict = Suitable | Excluded of string

val check_fn : ?effects:Analysis.Effects.t -> Ir.program -> string -> verdict
(** Check a function (by key) and everything it transitively calls.
    [effects] shares a precomputed effect inference (the compiler
    driver runs it once per program); omitted, a fresh one is
    computed. *)

val callees : Ir.program -> string -> string list
(** Transitive callees of a suitable function in dependency order
    (callees first, the entry last); intrinsics are omitted. Used by
    the OpenCL generator to emit device functions. *)
