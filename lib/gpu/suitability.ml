module Ir = Lime_ir.Ir

(* Backend exclusion analysis.

   "Each of the device compilers ... examines the tasks that make up
   each task graph and decides whether the code that comprises the
   tasks is suitable for the device. A task containing language
   constructs that are not suitable for the device is excluded from
   further compilation by that backend." (paper section 3)

   The GPU backend accepts data-parallel code: functions over scalars
   and arrays of scalars, calling only other suitable functions.
   Eligibility is decided by the interprocedural effect inference
   ([Analysis.Effects]), not by the declared locality: a [global]
   method that provably performs no side effect is as suitable as a
   [local] one, and every exclusion names the concrete offending
   effect and its witness call chain. Writing array elements is the
   one effect a kernel is allowed (that is what the output buffer is
   for); state (objects, fields), allocation, nested task graphs and
   nested map/reduce remain excluded, mirroring the OpenCL
   restrictions of the era. *)

type verdict = Suitable | Excluded of string

exception Unsuitable of string

let reject fmt = Format.kasprintf (fun s -> raise (Unsuitable s)) fmt

(* Transitive callees of a function, in dependency order (callees
   first); the OpenCL generator emits them as device functions, and
   the suitability check vets each one's signature. *)
let callees (prog : Ir.program) (key : string) : string list =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit key =
    if
      (not (Lime_ir.Intrinsics.is_intrinsic key))
      && not (Hashtbl.mem seen key)
    then begin
      Hashtbl.add seen key ();
      (match Ir.find_func prog key with
      | None -> ()
      | Some fn -> visit_block fn.fn_body);
      order := key :: !order
    end
  and visit_block b = List.iter visit_instr b
  and visit_instr = function
    | Ir.I_let (_, r) | Ir.I_set (_, r) | Ir.I_do r -> visit_rhs r
    | Ir.I_if (_, a, b) ->
      visit_block a;
      visit_block b
    | Ir.I_while (c, _, body) ->
      visit_block c;
      visit_block body
    | Ir.I_astore _ | Ir.I_setfield _ | Ir.I_return _ | Ir.I_run_graph _ -> ()
  and visit_rhs = function
    | Ir.R_call (callee, _) -> visit callee
    | Ir.R_op _ | Ir.R_unop _ | Ir.R_binop _ | Ir.R_alen _ | Ir.R_aload _
    | Ir.R_newarr _ | Ir.R_freeze _ | Ir.R_newobj _ | Ir.R_field _
    | Ir.R_map _ | Ir.R_reduce _ | Ir.R_mkgraph _ ->
      ()
  in
  visit key;
  (* Keys are pushed post-order, so the entry is at the head; reversing
     yields callees first with the entry last. *)
  List.rev !order

(* Per-function signature/kind checks that are about the device's
   calling convention rather than about effects. *)
let check_shape (prog : Ir.program) (fn : Ir.func) =
  let key = fn.Ir.fn_key in
  (match fn.fn_kind with
  | Ir.K_static -> ()
  | Ir.K_instance owner when not (Ir.String_map.mem owner prog.classes) ->
    (* value-enum methods are pure: the receiver is a scalar *)
    ()
  | Ir.K_instance _ | Ir.K_ctor _ ->
    reject "%s is stateful (instance method or constructor)" key);
  List.iter
    (fun (p : Ir.var) ->
      if not (Ir.data_ty p.v_ty) then
        reject "%s: parameter %s has device-unsupported type %s" key p.v_name
          (Ir.ty_to_string p.v_ty))
    fn.fn_params;
  if not (Ir.data_ty fn.fn_ret || fn.fn_ret = Ir.Unit) then
    reject "%s: return type %s not supported on the device" key
      (Ir.ty_to_string fn.fn_ret)

(* [effects] lets the compiler driver share one inference across every
   site; standalone callers get a fresh one. *)
let check_fn ?effects (prog : Ir.program) (key : string) : verdict =
  let summaries =
    match effects with Some e -> e | None -> Analysis.Effects.infer prog
  in
  match
    List.iter
      (fun k ->
        if not (Lime_ir.Intrinsics.is_intrinsic k) then
          match Ir.find_func prog k with
          | None -> reject "calls unknown function %s" k
          | Some fn -> check_shape prog fn)
      (callees prog key);
    List.iter
      (fun (w : Analysis.Effects.witness) ->
        match w.Analysis.Effects.w_effect with
        | Analysis.Effects.Writes_array ->
          (* kernels write their output buffers *)
          ()
        | _ -> reject "%s %s" key (Analysis.Effects.describe_witness w))
      (Analysis.Effects.summary summaries key)
  with
  | () -> Suitable
  | exception Unsuitable reason -> Excluded reason
