module Ir = Lime_ir.Ir
module I = Lime_ir.Interp
module V = Wire.Value

exception Device_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Device_error s)) fmt

type timing = {
  items : int;
  compute_cycles : float;
  mem_bytes : int;
  kernel_ns : float;
  avg_divergence_groups : float;
}

(* Per-lane accounting while a work item executes. *)
type lane = {
  mutable cycles : float;
  mutable mem_bytes : int;
  mutable branch_sig : int;
}

let elem_bytes = function
  | Ir.I32 | Ir.F32 | Ir.Enum _ | Ir.Bool -> 4
  | Ir.Bit -> 1
  | Ir.Arr _ | Ir.Obj _ | Ir.Graph | Ir.Unit -> 4

let unop_cycles = function
  | Ir.Neg_i | Ir.Not_b | Ir.Bnot_i | Ir.I2f -> 1.0
  | Ir.Neg_f -> 1.0

let binop_cycles = function
  | Ir.Add_i | Ir.Sub_i | Ir.Shl_i | Ir.Shr_i | Ir.And_i | Ir.Or_i | Ir.Xor_i
  | Ir.And_b | Ir.Or_b | Ir.Xor_b | Ir.And_bit | Ir.Or_bit | Ir.Xor_bit
  | Ir.Eq | Ir.Neq
  | Ir.Lt_i | Ir.Leq_i | Ir.Gt_i | Ir.Geq_i
  | Ir.Lt_f | Ir.Leq_f | Ir.Gt_f | Ir.Geq_f ->
    1.0
  | Ir.Mul_i -> 2.0
  | Ir.Add_f | Ir.Sub_f | Ir.Mul_f -> 1.0
  | Ir.Div_i | Ir.Rem_i -> 20.0
  | Ir.Div_f -> 10.0
  | Ir.Rem_f -> 20.0

let call_overhead = 2.0
let mem_op_cycles = 4.0

exception Return of V.t

(* Bounds proofs for device functions. run_map executes one lane per
   element, so the relational analysis is memoized per (program,
   function) — programs by physical identity, since the proofs are
   keyed by physical instruction. A handful of programs ever coexist;
   the cache keeps the most recent few. *)
let proof_cache :
    (Ir.program * (string, Ir.instr -> bool) Hashtbl.t) list ref =
  ref []

let max_cached_programs = 8

let prover_for (prog : Ir.program) (key : string) : Ir.instr -> bool =
  let tbl =
    match List.find_opt (fun (p, _) -> p == prog) !proof_cache with
    | Some (_, tbl) -> tbl
    | None ->
      let tbl = Hashtbl.create 16 in
      proof_cache :=
        (prog, tbl)
        :: (if List.length !proof_cache >= max_cached_programs then
              List.filteri (fun i _ -> i < max_cached_programs - 1) !proof_cache
            else !proof_cache);
      tbl
  in
  match Hashtbl.find_opt tbl key with
  | Some p -> p
  | None ->
    let p =
      match Ir.find_func prog key with
      | None -> fun _ -> false
      | Some fn ->
        Analysis.Symbolic.fn_prover (Analysis.Symbolic.analyze_fn prog fn)
    in
    Hashtbl.add tbl key p;
    p

(* Execute [fn key] for one work item, charging the lane. The value
   semantics delegate to the reference interpreter's primitives.
   Accesses with a static bounds proof take the unchecked primitives —
   the device-side counterpart of the unguarded loads/stores in the
   generated OpenCL. *)
let exec_lane (prog : Ir.program) (lane : lane) (key : string)
    (args : V.t list) : V.t =
  let rec call key args =
    if Lime_ir.Intrinsics.is_intrinsic key then begin
      lane.cycles <- lane.cycles +. Lime_ir.Intrinsics.device_cycles key;
      match Lime_ir.Intrinsics.apply key args with
      | v -> v
      | exception Lime_ir.Intrinsics.Error m -> fail "%s" m
    end
    else
    let fn =
      match Ir.find_func prog key with
      | Some f -> f
      | None -> fail "no device function %s" key
    in
    lane.cycles <- lane.cycles +. call_overhead;
    let proven = prover_for prog key in
    let slots = Array.make (Ir.var_slot_count fn) V.Unit in
    List.iteri
      (fun i a ->
        let p = List.nth fn.fn_params i in
        slots.(p.Ir.v_id) <- a)
      args;
    match exec_block proven slots fn.fn_body with
    | () ->
      if fn.fn_ret = Ir.Unit then V.Unit
      else fail "%s fell off the end on the device" key
    | exception Return v -> v
  and operand slots (o : Ir.operand) =
    match o with
    | Ir.O_const c -> I.const_value c
    | Ir.O_var v -> slots.(v.Ir.v_id)
  and exec_block proven slots b = List.iter (exec_instr proven slots) b
  and exec_instr proven slots (i : Ir.instr) =
    match i with
    | Ir.I_let (v, r) | Ir.I_set (v, r) ->
      slots.(v.Ir.v_id) <- eval_rhs ~unguarded:(proven i) slots r
    | Ir.I_astore (a, idx, x) -> (
      lane.cycles <- lane.cycles +. mem_op_cycles;
      match operand slots idx with
      | V.Int i_ ->
        let arr = operand slots a in
        lane.mem_bytes <- lane.mem_bytes + 4;
        (if proven i then I.array_set_unchecked else I.array_set)
          arr i_ (operand slots x)
      | _ -> fail "non-integer index")
    | Ir.I_setfield _ -> fail "field write on the device"
    | Ir.I_if (c, a, b) -> (
      match operand slots c with
      | V.Bool cond ->
        lane.branch_sig <- (lane.branch_sig * 31) + if cond then 1 else 2;
        lane.cycles <- lane.cycles +. 1.0;
        exec_block proven slots (if cond then a else b)
      | _ -> fail "non-boolean condition")
    | Ir.I_while (cond_block, cond_op, body) ->
      let rec loop () =
        exec_block proven slots cond_block;
        match operand slots cond_op with
        | V.Bool true ->
          lane.branch_sig <- (lane.branch_sig * 31) + 1;
          lane.cycles <- lane.cycles +. 1.0;
          exec_block proven slots body;
          loop ()
        | V.Bool false ->
          lane.branch_sig <- (lane.branch_sig * 31) + 2;
          lane.cycles <- lane.cycles +. 1.0
        | _ -> fail "non-boolean loop condition"
      in
      loop ()
    | Ir.I_return (Some o) -> raise (Return (operand slots o))
    | Ir.I_return None -> raise (Return V.Unit)
    | Ir.I_run_graph _ -> fail "nested graph on the device"
    | Ir.I_do r -> ignore (eval_rhs ~unguarded:(proven i) slots r)
  and eval_rhs ~unguarded slots (r : Ir.rhs) : V.t =
    match r with
    | Ir.R_op o -> operand slots o
    | Ir.R_unop (op, a) ->
      lane.cycles <- lane.cycles +. unop_cycles op;
      I.eval_unop op (operand slots a)
    | Ir.R_binop (op, a, b) ->
      lane.cycles <- lane.cycles +. binop_cycles op;
      I.eval_binop op (operand slots a) (operand slots b)
    | Ir.R_alen a ->
      lane.cycles <- lane.cycles +. 1.0;
      V.Int (I.array_length (operand slots a))
    | Ir.R_aload (a, i) -> (
      lane.cycles <- lane.cycles +. mem_op_cycles;
      match operand slots i with
      | V.Int i ->
        let arr = operand slots a in
        lane.mem_bytes <- lane.mem_bytes + 4;
        (if unguarded then I.array_get_unchecked else I.array_get) arr i
      | _ -> fail "non-integer index")
    | Ir.R_call (key, args) -> call key (List.map (operand slots) args)
    | Ir.R_newarr _ | Ir.R_freeze _ | Ir.R_newobj _ | Ir.R_field _
    | Ir.R_map _ | Ir.R_reduce _ | Ir.R_mkgraph _ ->
      fail "construct not supported on the device (should be excluded)"
  in
  call key args

(* Aggregate per-lane traces into device timing. *)
let aggregate ?(device = Device.gtx580) ~model_divergence
    (lanes : lane array) : timing =
  let n = Array.length lanes in
  let warp = device.Device.lanes_per_warp in
  let warps = (n + warp - 1) / max warp 1 in
  let total_cycles = ref 0.0 in
  let total_groups = ref 0 in
  for w = 0 to warps - 1 do
    let lo = w * warp in
    let hi = min (lo + warp) n - 1 in
    if model_divergence then begin
      (* Divergent signatures serialize: the warp pays the max cost of
         each distinct control-flow group. *)
      let groups = Hashtbl.create 8 in
      for i = lo to hi do
        let l = lanes.(i) in
        let cur = try Hashtbl.find groups l.branch_sig with Not_found -> 0.0 in
        Hashtbl.replace groups l.branch_sig (Float.max cur l.cycles)
      done;
      Hashtbl.iter (fun _ c -> total_cycles := !total_cycles +. c) groups;
      total_groups := !total_groups + Hashtbl.length groups
    end
    else begin
      let m = ref 0.0 in
      for i = lo to hi do
        if lanes.(i).cycles > !m then m := lanes.(i).cycles
      done;
      total_cycles := !total_cycles +. !m;
      incr total_groups
    end
  done;
  let mem_bytes = Array.fold_left (fun acc l -> acc + l.mem_bytes) 0 lanes in
  (* Warps spread across SMs; memory traffic is bandwidth-limited. *)
  let compute_ns =
    Device.cycles_to_ns device (!total_cycles /. float_of_int device.Device.sms)
  in
  let bw_bytes_per_ns = device.Device.mem_bandwidth_gbps /. 1.0 in
  let mem_ns = float_of_int mem_bytes /. bw_bytes_per_ns in
  {
    items = n;
    compute_cycles = !total_cycles;
    mem_bytes;
    kernel_ns = Float.max compute_ns mem_ns +. device.Device.launch_overhead_ns;
    avg_divergence_groups =
      (if warps = 0 then 1.0 else float_of_int !total_groups /. float_of_int warps);
  }

let fresh_lane () = { cycles = 0.0; mem_bytes = 0; branch_sig = 0 }

(* Device-model telemetry: each simulated kernel launch becomes a span
   (category ["gpu"]) whose end carries the item count and modeled
   kernel time. Free when tracing is off. *)
let traced kind name (f : unit -> V.t * timing) =
  if not (Support.Trace.enabled ()) then f ()
  else
    let sp =
      Support.Trace.begin_span ~cat:"gpu"
        ~args:[ "kind", Support.Trace.Str kind ]
        name
    in
    match f () with
    | (_, t) as r ->
      Support.Trace.end_span
        ~args:
          [
            "items", Support.Trace.Int t.items;
            "kernel_ns", Support.Trace.Float t.kernel_ns;
          ]
        sp;
      r
    | exception e ->
      Support.Trace.end_span sp;
      raise e

let run_map ?(device = Device.gtx580) ?(model_divergence = true)
    (prog : Ir.program) (site : Ir.map_site) (args : V.t list) :
    V.t * timing =
  Support.Fault.check ~device:"gpu" ~segment:site.map_uid;
  traced "map" site.map_uid @@ fun () ->
  let pairs = List.combine args (List.map snd site.map_args) in
  let lengths =
    List.filter_map
      (fun (a, mapped) -> if mapped then Some (I.array_length a) else None)
      pairs
  in
  let n =
    match lengths with
    | [] -> fail "map kernel without array arguments"
    | n :: rest ->
      if List.exists (fun m -> m <> n) rest then
        fail "mapped arrays have different lengths";
      n
  in
  let result = I.new_array site.map_elem_ty n in
  let lanes = Array.init n (fun _ -> fresh_lane ()) in
  for i = 0 to n - 1 do
    let lane = lanes.(i) in
    let call_args =
      List.map (fun (a, mapped) -> if mapped then I.array_get a i else a) pairs
    in
    let r = exec_lane prog lane site.map_fn call_args in
    (* input reads + output write *)
    lane.mem_bytes <-
      lane.mem_bytes + elem_bytes site.map_elem_ty
      + List.fold_left
          (fun acc (_, mapped) -> if mapped then acc + 4 else acc)
          0 pairs;
    I.array_set result i r
  done;
  I.freeze result, aggregate ~device ~model_divergence lanes

let run_reduce ?(device = Device.gtx580) ?(model_divergence = true)
    (prog : Ir.program) (site : Ir.reduce_site) (arg : V.t) : V.t * timing =
  Support.Fault.check ~device:"gpu" ~segment:site.red_uid;
  traced "reduce" site.red_uid @@ fun () ->
  (* Tree reductions keep warps uniform; divergence does not apply. *)
  ignore model_divergence;
  let n = I.array_length arg in
  if n = 0 then fail "reduce of an empty array";
  (* Values fold left (identical to the CPU), but the device timing is
     that of a tree: ~2n/lanes combiner applications worth of cycles
     plus log n synchronization stages. *)
  let lane = fresh_lane () in
  let acc = ref (I.array_get arg 0) in
  for i = 1 to n - 1 do
    acc := exec_lane prog lane site.red_fn [ !acc; I.array_get arg i ]
  done;
  let per_apply =
    if n > 1 then lane.cycles /. float_of_int (n - 1) else lane.cycles
  in
  let lanes_total = float_of_int (Device.total_lanes device) in
  let stages = ceil (log (float_of_int (max n 2)) /. log 2.0) in
  let tree_cycles =
    (2.0 *. float_of_int n /. lanes_total *. per_apply) +. (stages *. 20.0)
  in
  let mem_bytes = (n * elem_bytes site.red_elem_ty) + elem_bytes site.red_elem_ty in
  let compute_ns = Device.cycles_to_ns device tree_cycles in
  let mem_ns = float_of_int mem_bytes /. device.Device.mem_bandwidth_gbps in
  let timing =
    {
      items = n;
      compute_cycles = tree_cycles;
      mem_bytes;
      kernel_ns =
        Float.max compute_ns mem_ns +. device.Device.launch_overhead_ns;
      avg_divergence_groups = 1.0;
    }
  in
  !acc, timing

let run_filter_chain ?(device = Device.gtx580) ?(model_divergence = true)
    ?uid (prog : Ir.program) ~(chain : string list) ~(output_ty : Ir.ty)
    (input : V.t) : V.t * timing =
  if chain = [] then fail "empty filter chain";
  let name = Option.value uid ~default:(String.concat "|" chain) in
  (* Fused kernels are fault-checked by the engine's launch prelude
     under their pre-fusion alias names — checking the fused uid here
     too would double-charge one launch. *)
  if not (Lime_ir.Fuse.is_fused_uid name) then
    Support.Fault.check ~device:"gpu" ~segment:name;
  traced "filter-chain" name @@ fun () ->
  let n = I.array_length input in
  let result = I.new_array output_ty n in
  let lanes = Array.init n (fun _ -> fresh_lane ()) in
  for i = 0 to n - 1 do
    let lane = lanes.(i) in
    let x = ref (I.array_get input i) in
    List.iter (fun key -> x := exec_lane prog lane key [ !x ]) chain;
    lane.mem_bytes <- lane.mem_bytes + 4 + elem_bytes output_ty;
    I.array_set result i !x
  done;
  I.freeze result, aggregate ~device ~model_divergence lanes
