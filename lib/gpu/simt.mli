module Ir = Lime_ir.Ir

(** SIMT execution simulator.

    Functionally it computes exactly what the bytecode path computes
    (it reuses the reference interpreter's operator semantics), so
    substituting a GPU artifact never changes program results — the
    paper's semantic-equivalence requirement for artifacts.

    For timing it models the forces that produce the paper's reported
    12x-431x data-parallel speedups: thousands of SIMT lanes, warp
    divergence (divergent lanes serialize per warp), and memory
    bandwidth. Every lane records a cycle count, a branch signature
    and its memory traffic; warps pay the maximum cost per divergent
    group, warps spread across SMs, and the kernel pays
    max(compute, memory) plus a fixed launch overhead. *)

type timing = {
  items : int;  (** work items executed *)
  compute_cycles : float;  (** aggregate warp cycles across the device *)
  mem_bytes : int;
  kernel_ns : float;  (** modeled wall time of the kernel alone *)
  avg_divergence_groups : float;
      (** mean number of serialized groups per warp; 1.0 = uniform *)
}

exception Device_error of string

val run_map :
  ?device:Device.t ->
  ?model_divergence:bool ->
  Ir.program ->
  Ir.map_site ->
  Wire.Value.t list ->
  Wire.Value.t * timing
(** Execute a map site over its (already evaluated) arguments.
    Returns the frozen result array. *)

val run_reduce :
  ?device:Device.t ->
  ?model_divergence:bool ->
  Ir.program ->
  Ir.reduce_site ->
  Wire.Value.t ->
  Wire.Value.t * timing
(** Execute a reduce site. Values fold left-to-right (identical to the
    CPU path); the timing models a tree reduction. *)

val run_filter_chain :
  ?device:Device.t ->
  ?model_divergence:bool ->
  ?uid:string ->
  Ir.program ->
  chain:string list ->
  output_ty:Ir.ty ->
  Wire.Value.t ->
  Wire.Value.t * timing
(** Execute a fused chain of pure filters elementwise over a stream
    array: the GPU form of a substituted task subgraph. [uid] names
    the launch for tracing and fault injection (defaults to the
    joined chain). *)
